"""Gray-failure chaos sweeps over the device x engine x profile matrix.

Usage::

    python -m repro chaos                          # durassd/innodb, all profiles
    python -m repro chaos innodb ssd-a --profile gc-storm --seeds 20
    python -m repro chaos --smoke                  # CI: every preset, quick
    python -m repro chaos --corruption bit-rot --mirror 2
    python -m repro chaos --death mid-death --mirror 2 --spares 1
    python -m repro chaos --interface nvme --sq 4    # NVMe multi-queue host
    python -m repro chaos --list-profiles
    python -m repro chaos --seeds 20 --out repro.json
    python -m repro chaos --replay repro.json

Each run replays a seeded LinkBench stream against devices injected with
a named gray-fault profile (:data:`repro.failures.grayfaults.PROFILES`)
while the full tolerance stack is armed: host command deadlines with
abort/soft-reset/retry, plus database admission control and read-only
demotion.  A run passes when the stream completes (liveness), the
post-run power-cut recovery checks clean (safety), completion time stays
inside the profile's degradation bound, and a permanent hang demotes the
engine to read-only instead of deadlocking.  Failing runs are minimized
to replayable JSON artifacts with ``--out``.
"""

import json
import sys
import time

from ..failures import chaos as harness
from . import setups
from .scenarios import CORRUPTION_PROFILES, DEATH_PROFILES, GRAY_PROFILES

DEVICES = ("hdd", "ssd-a", "ssd-b", "durassd")

#: curable profiles every smoke device is swept with
SMOKE_PROFILES = ("mild", "gc-storm", "pause", "hang")

SMOKE_BASE_OPS = 40


def run_profile(engine, device, profile, seed, ops, gray_target="both",
                stripe=1, corruption=None, mirror=1, checksums=None,
                scrub=None, death=None, death_target="data", spares=0,
                rebuild_pace=None, interface="sata", submission_queues=2):
    scenario = harness.chaos_scenario(engine=engine, device=device,
                                      profile=profile, seed=seed, ops=ops,
                                      gray_target=gray_target, stripe=stripe,
                                      corruption=corruption, mirror=mirror,
                                      checksums=checksums, scrub=scrub,
                                      death=death, death_target=death_target,
                                      spares=spares,
                                      rebuild_pace=rebuild_pace,
                                      interface=interface,
                                      submission_queues=submission_queues)
    result = harness.run_chaos(scenario)
    return scenario, result


def _print_result(label, result, elapsed):
    verdict = "PASS" if result.clean else "FAIL"
    if not result.expected_clean and result.violations:
        verdict = "FINDS"
    ratio = ("%.2fx" % result.degradation_ratio
             if result.degradation_ratio is not None else "-")
    detect = ("%.0fms" % (result.detection_latency_s * 1e3)
              if result.detection_latency_s is not None else "-")
    print("%-32s %-6s ok=%-4d to=%-3d rej=%-3d hard=%-3d ro=%-5s "
          "slow=%-6s det=%-6s %5.1fs"
          % (label, verdict, result.ops_ok, result.ops_timed_out,
             result.ops_rejected, result.ops_failed_hard,
             result.read_only, ratio, detect, elapsed))
    if result.failover:
        info = result.failover
        mttr = ("%.0fms" % (info["rebuild_mttr_s"] * 1e3)
                if info["rebuild_mttr_s"] is not None else "-")
        print("    failover: dead=%s degraded=%.0fms copied=%d "
              "mttr=%s lost=%d"
              % (",".join(info["devices_dead"]) or "-",
                 info["degraded_seconds"] * 1e3, info["blocks_copied"],
                 mttr, info["data_loss_blocks"]))
    for violation in result.violations:
        print("    violation: %s" % violation)


def smoke(ops=None, seed=11):
    """Quick chaos pass over every device preset; the CI chaos gate."""
    ops = ops if ops is not None else setups.ops_scale(SMOKE_BASE_OPS)
    print("chaos smoke: %d ops per run, seed %d" % (ops, seed))
    exit_code = 0
    for device in DEVICES:
        for profile in SMOKE_PROFILES:
            begin = time.time()
            _scenario, result = run_profile("innodb", device, profile,
                                            seed, ops)
            _print_result("innodb/%s/%s" % (device, profile), result,
                          time.time() - begin)
            if result.failed or not result.completed:
                exit_code = 1
        # The terminal case: a permanently hung data device must demote
        # the engine to read-only — completing the stream with rejected
        # writes — never deadlock the workload.  Floor the op count so
        # quick mode still leaves enough writes after the hang instant
        # to reach the escalation limit.
        begin = time.time()
        _scenario, result = run_profile("innodb", device, "hang-permanent",
                                        seed, max(ops, SMOKE_BASE_OPS),
                                        gray_target="data")
        _print_result("innodb/%s/hang-permanent" % device, result,
                      time.time() - begin)
        if result.failed or not result.completed or not result.read_only:
            if not result.read_only:
                print("    permanent hang did not demote to read-only")
            exit_code = 1
    # One sick stripe member: gray faults on data member 1 only.  The
    # stream must still complete (the host retries around the sick
    # member's timeouts) and the post-run power-cut recovery must check
    # clean — the healthy members' write-order invariants hold even
    # while their sibling is misbehaving.
    begin = time.time()
    _scenario, result = run_profile("innodb", "durassd", "gc-storm",
                                    seed, max(ops, SMOKE_BASE_OPS),
                                    gray_target="data:1", stripe=2)
    _print_result("innodb/durassd/gc-storm (stripe=2, member 1)", result,
                  time.time() - begin)
    if result.failed or not result.completed:
        exit_code = 1
    # The same gray-fault ladder behind the NVMe multi-queue host
    # interface: deadlines, aborts and soft resets must work per
    # submission queue, and the post-run power-cut recovery must still
    # check clean — the queue model changes dispatch, not durability.
    begin = time.time()
    _scenario, result = run_profile("innodb", "durassd", "gc-storm",
                                    seed, max(ops, SMOKE_BASE_OPS),
                                    gray_target="data",
                                    interface="nvme", submission_queues=2)
    _print_result("innodb/durassd/gc-storm (nvme, sq=2)", result,
                  time.time() - begin)
    if result.failed or not result.completed:
        exit_code = 1
    # Silent corruption against an armed defense: bit rot on both
    # mirror replicas (independent salts), checksums verifying every
    # read, the scrubber patrolling in the background.  The stream must
    # complete with zero undetected corrupt reads (the passive audit
    # layer is the oracle) and the integrity SLO rules must fire so the
    # verdict carries a corruption-detection latency.  Floor the op
    # count: corruption surfaces only once reads miss the caches.
    begin = time.time()
    _scenario, result = run_profile("innodb", "durassd", "none",
                                    seed, max(ops * 5, 200),
                                    corruption="corruption-mix", mirror=2)
    _print_result("innodb/durassd/corruption-mix (mirror=2)", result,
                  time.time() - begin)
    if result.failed or not result.completed:
        exit_code = 1
    if result.undetected_corrupt_reads:
        print("    undetected corrupt reads: %d"
              % result.undetected_corrupt_reads)
        exit_code = 1
    if not result.alerts:
        print("    corruption fired no SLO alert")
        exit_code = 1
    # False-positive control: same defenses armed, no corruption
    # injected.  The integrity rules must stay silent.
    begin = time.time()
    _scenario, result = run_profile("innodb", "durassd", "none",
                                    seed, max(ops, SMOKE_BASE_OPS),
                                    mirror=2, checksums=True, scrub=True)
    _print_result("innodb/durassd/none (mirror=2, armed)", result,
                  time.time() - begin)
    if result.failed or not result.completed:
        exit_code = 1
    # Whole-device fail-stop with a hot spare: mirror member 0 dies
    # mid-stream, the survivor serves degraded, the rebuilder copies
    # the tracked blocks onto the spare.  The verdict must carry a
    # member-down detection latency and a rebuild MTTR, with zero
    # acked-write loss — a completed rebuild is the PASS condition.
    begin = time.time()
    _scenario, result = run_profile("innodb", "durassd", "none",
                                    seed, max(ops, SMOKE_BASE_OPS),
                                    death="mid-death",
                                    death_target="data:0", mirror=2,
                                    spares=1, checksums=True)
    _print_result("innodb/durassd/mid-death (mirror=2, spare)", result,
                  time.time() - begin)
    info = result.failover or {}
    if result.failed or not result.completed or not result.clean:
        exit_code = 1
    if info.get("data_loss_blocks"):
        print("    acked writes lost with a survivor present")
        exit_code = 1
    if not info.get("rebuilds_completed"):
        print("    hot-spare rebuild did not complete")
        exit_code = 1
    if result.detection_latency_s is None:
        print("    member death fired no SLO alert")
        exit_code = 1
    # Second failure during rebuild: both mirror members die (the
    # second mid-rebuild, the pace is slowed so the window is open).
    # The cell must complete — and must *loudly* report detected data
    # loss; a silent PASS here is the one unforgivable outcome.
    begin = time.time()
    _scenario, result = run_profile("innodb", "durassd", "none",
                                    seed, max(ops, SMOKE_BASE_OPS),
                                    death="double-death",
                                    death_target="data", mirror=2,
                                    spares=1, rebuild_pace=5e-3)
    _print_result("innodb/durassd/double-death (mirror=2, spare)", result,
                  time.time() - begin)
    if not result.completed:
        exit_code = 1
    if not any(violation.startswith("death:data-loss-detected")
               for violation in result.violations):
        print("    second death did not report detected data loss")
        exit_code = 1
    print("chaos smoke: %s" % ("ok" if exit_code == 0 else "FAILED"))
    return exit_code


def sweep_seeds(engine, device, profile, seeds, ops, base_seed=0,
                out_path=None, corruption=None, mirror=1, death=None,
                death_target="data", spares=0, interface="sata",
                submission_queues=2):
    """``seeds`` independent runs of one profile; minimize the first
    failure to a replayable artifact when ``--out`` is given."""
    exit_code = 0
    for seed in range(base_seed, base_seed + seeds):
        begin = time.time()
        scenario, result = run_profile(engine, device, profile, seed, ops,
                                       corruption=corruption, mirror=mirror,
                                       death=death,
                                       death_target=death_target,
                                       spares=spares, interface=interface,
                                       submission_queues=submission_queues)
        label = "%s/%s/%s" % (engine, device, profile)
        if corruption:
            label += "+%s" % corruption
        if death:
            label += "+%s" % death
        _print_result("%s seed=%d" % (label, seed),
                      result, time.time() - begin)
        if result.failed or not result.completed:
            exit_code = 1
            if out_path:
                ops_list = harness.generate_ops(scenario)
                artifact = harness.minimize_chaos(
                    scenario, ops_list,
                    predicate=lambda r: r.failed or not r.completed)
                if artifact is None:
                    print("    minimization found no stable repro")
                else:
                    with open(out_path, "w") as handle:
                        json.dump(artifact, handle, indent=2, sort_keys=True)
                    print("    minimized repro (%d ops): %s"
                          % (len(artifact["ops"]), out_path))
                out_path = None  # keep only the first failure's artifact
    return exit_code


def replay(path):
    """Re-run a minimized chaos artifact and report its verdict."""
    with open(path) as handle:
        artifact = json.load(handle)
    begin = time.time()
    result = harness.replay_artifact(artifact)
    _print_result("replay %s" % path, result, time.time() - begin)
    print("  recorded violations: %r" % (artifact.get("violations"),))
    return 1 if (result.failed or not result.completed) else 0


def _print_profiles():
    """Every named fault profile the chaos harness can inject."""
    print("gray-fault profiles (--profile NAME):")
    for line in GRAY_PROFILES.listing():
        print(line)
    print("corruption profiles (--corruption NAME):")
    for line in CORRUPTION_PROFILES.listing():
        print(line)
    print("death profiles (--death NAME):")
    for line in DEATH_PROFILES.listing():
        print(line)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        _print_profiles()
        return 0
    if "--list-profiles" in argv:
        _print_profiles()
        return 0

    def take_option(name, default=None):
        if name in argv:
            index = argv.index(name)
            value = argv[index + 1]
            del argv[index:index + 2]
            return value
        return default

    smoke_mode = "--smoke" in argv
    if smoke_mode:
        argv.remove("--smoke")
    replay_path = take_option("--replay")
    ops = take_option("--ops")
    seed = int(take_option("--seed", "0"))
    seeds = int(take_option("--seeds", "1"))
    profile = take_option("--profile")
    out_path = take_option("--out")
    corruption = take_option("--corruption")
    mirror = int(take_option("--mirror", "1"))
    death = take_option("--death")
    death_target = take_option("--death-target", "data")
    spares = int(take_option("--spares", "0"))
    interface = take_option("--interface", "sata")
    submission_queues = int(take_option("--sq", "2"))
    if replay_path:
        return replay(replay_path)
    if smoke_mode:
        return smoke(ops=int(ops) if ops else None,
                     seed=seed if seed else 11)
    engine = argv[0] if argv else "innodb"
    device = argv[1] if len(argv) > 1 else "durassd"
    ops = int(ops) if ops else setups.ops_scale(120)
    if profile and profile not in GRAY_PROFILES:
        print("no gray-fault profile %r (have: %s)"
              % (profile, ", ".join(GRAY_PROFILES.names())))
        return 2
    if corruption and corruption not in CORRUPTION_PROFILES:
        print("no corruption profile %r (have: %s)"
              % (corruption, ", ".join(CORRUPTION_PROFILES.names())))
        return 2
    if death and death not in DEATH_PROFILES:
        print("no death profile %r (have: %s)"
              % (death, ", ".join(DEATH_PROFILES.names())))
        return 2
    if (corruption or death) and not profile:
        # corruption or death alone is a valid chaos run: default the
        # gray-fault dimension to the healthy control instead of
        # sweeping it.
        profiles = ["none"]
    else:
        profiles = [profile] if profile else [name for name in GRAY_PROFILES
                                              if name != "none"]
    exit_code = 0
    for name in profiles:
        code = sweep_seeds(engine, device, name, seeds, ops,
                           base_seed=seed, out_path=out_path,
                           corruption=corruption, mirror=mirror,
                           death=death, death_target=death_target,
                           spares=spares, interface=interface,
                           submission_queues=submission_queues)
        exit_code = exit_code or code
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
