"""Experiment drivers — one module per table/figure of the paper, plus
ablations.  Each module exposes ``run()`` returning structured results
and ``format_table(...)`` printing the paper-vs-measured comparison."""

from . import (  # noqa: F401
    ablations,
    atomicity,
    bursts,
    figure5,
    figure6,
    setups,
    table1,
    table2,
    table3,
    table4,
    table5,
    tableio,
    torture,
)

__all__ = [
    "ablations",
    "atomicity",
    "bursts",
    "figure5",
    "figure6",
    "setups",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "tableio",
    "torture",
]
