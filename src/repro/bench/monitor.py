"""Continuous-metrics dashboards: ``python -m repro monitor <scenario>``.

Runs a traced scenario with windowed metrics armed (spans stay off —
counters snapshot at window boundaries and add no simulation events),
pulls every device's SMART-style health report, evaluates the default
bench SLO rules over the collected windows, and renders a dashboard:
per-window series, device health, and fired alerts.

Usage::

    python -m repro monitor figure5
    python -m repro monitor figure5 --interval 0.005 --json dash.json
    python -m repro monitor table1 --gray-faults gc-storm --prom m.prom
    python -m repro monitor bursts --csv series.csv --quiet

The run is the same world ``repro trace`` builds, so numbers line up
with traces and the benches; with metrics disabled (every other CLI
path) the instruments are shared no-ops and results stay byte-identical.
"""

import json
import sys

from ..telemetry import (
    MetricsRegistry,
    SLOMonitor,
    Telemetry,
    default_bench_rules,
)
from ..telemetry import series as series_mod
from . import setups
from .scenarios import GRAY_PROFILES, TRACED

SCHEMA = "repro.monitor/1"

DEFAULT_INTERVAL = 0.01

#: cap on dashboard windows; longer runs are rolled up to stay readable
MAX_DASHBOARD_WINDOWS = 64


def run_scenario(name, interval=DEFAULT_INTERVAL, rules=None,
                 profile=False):
    """Run one traced scenario under windowed metrics.

    Returns ``(report, registry)`` — the dashboard report dict plus the
    live registry for the exporters.  With ``profile`` a
    :class:`~repro.sim.SimProfiler` rides the world, the registry gains
    ``sim.real_time_factor`` / ``sim.events_per_sec`` gauge series, and
    the report carries a ``profile`` wall-attribution summary.
    """
    fn = TRACED.get(name)
    registry = MetricsRegistry(interval=interval)
    telemetry = Telemetry(enabled=False, metrics=registry)
    profiler = None
    if profile:
        from ..sim import SimProfiler
        profiler = SimProfiler()
        telemetry.profiler = profiler
    outcome = fn(telemetry)
    registry.finish()
    monitor = SLOMonitor(registry,
                         default_bench_rules() if rules is None else rules)
    outcomes = monitor.evaluate()
    alerts = sorted((episode for rule in outcomes
                     for episode in rule.episodes),
                    key=lambda episode: episode.fired_at)
    windows = registry.windows
    report = {
        "schema": SCHEMA,
        "scenario": name,
        "outcome": outcome,
        "interval_s": interval,
        "windows": len(windows),
        "duration_s": windows[-1].t1 if windows else 0.0,
        "series": series_mod.series_json(
            registry, max_windows=MAX_DASHBOARD_WINDOWS),
        "smart": telemetry.smart_reports(),
        "slo": {
            "rules": [rule.to_json() for rule in outcomes],
            "alerts": [episode.to_json() for episode in alerts],
        },
    }
    if profiler is not None:
        report["profile"] = profiler.summary()
    return report, registry


# --- markdown dashboard ---------------------------------------------------
def _flatten(prefix, value, rows):
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten("%s.%s" % (prefix, key) if prefix else key,
                     value[key], rows)
    else:
        rows.append((prefix, value))


def _fmt(value):
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def render_markdown(report):
    """The dashboard as markdown: SLO verdicts, alerts, SMART, series."""
    lines = ["# repro monitor — %s" % report["scenario"], ""]
    lines.append("- outcome: %s" % report["outcome"])
    lines.append("- windows: %d x %.4gs (%.4gs simulated)"
                 % (report["windows"], report["interval_s"],
                    report["duration_s"]))
    lines.append("")

    lines.append("## SLO rules")
    lines.append("")
    lines.append("| rule | objective | windows | violations | alerts |")
    lines.append("|---|---|---:|---:|---:|")
    for rule in report["slo"]["rules"]:
        lines.append("| %s | `%s` | %d | %d | %d |"
                     % (rule["rule"]["name"], rule["objective"],
                        rule["evaluations"], rule["violations"],
                        len(rule["episodes"])))
    lines.append("")

    alerts = report["slo"]["alerts"]
    lines.append("## Alerts")
    lines.append("")
    if not alerts:
        lines.append("none fired.")
    for alert in alerts:
        cleared = ("cleared %.4gs" % alert["cleared_at_s"]
                   if alert["cleared_at_s"] is not None
                   else "still firing at end of run")
        lines.append("- **%s** fired %.4gs, %s — worst %s over %d "
                     "window(s) (`%s`)"
                     % (alert["rule"], alert["fired_at_s"], cleared,
                        _fmt(alert["worst_value"]),
                        alert["violating_windows"], alert["objective"]))
    lines.append("")

    lines.append("## Device health (SMART)")
    for smart in report["smart"]:
        lines.append("")
        lines.append("### %s (%s)" % (smart.get("device", "?"),
                                      smart.get("model", "?")))
        lines.append("")
        lines.append("| attribute | value |")
        lines.append("|---|---|")
        rows = []
        for key in sorted(smart):
            if key in ("device", "model"):
                continue
            _flatten(key, smart[key], rows)
        for key, value in rows:
            lines.append("| %s | %s |" % (key, _fmt(value)))
    lines.append("")

    profile = report.get("profile")
    if profile is not None:
        lines.append("## Simulator self-profile")
        lines.append("")
        lines.append("- %.3fs wall for %.3fs simulated — real-time "
                     "factor **%.2fx**, %.0f events/sec"
                     % (profile["wall_seconds"], profile["sim_seconds"],
                        profile["real_time_factor"],
                        profile["events_per_sec"]))
        lines.append("")
        lines.append("| layer | wall s | share | events |")
        lines.append("|---|---:|---:|---:|")
        for row in profile["layers"]:
            lines.append("| %s | %.4f | %.1f%% | %d |"
                         % (row["layer"], row["wall_s"],
                            row["share"] * 100, row["events"]))
        lines.append("")

    lines.append("## Series")
    lines.append("")
    lines.append("| metric | labels | kind | last | total delta |")
    lines.append("|---|---|---|---:|---:|")
    for entry in report["series"]:
        points = entry["windows"]
        if not points:
            continue
        last = points[-1]
        if entry["kind"] == "histogram":
            final = "%d obs / %.6gs" % (last["count"], last["sum"])
            total = str(sum(point["delta_count"] for point in points))
        elif entry["kind"] == "counter":
            final = _fmt(last["value"])
            total = _fmt(sum(point["delta"] for point in points))
        else:
            final = _fmt(last["value"])
            total = "-"
        lines.append("| %s | %s | %s | %s | %s |"
                     % (entry["name"],
                        series_mod.labels_text(entry["labels"]) or "-",
                        entry["kind"], final, total))
    lines.append("")
    return "\n".join(lines)


def main(argv):
    args = list(argv)
    if not args or args[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("scenarios:")
        for line in TRACED.listing():
            print(line)
        print("\noptions: --interval SECONDS (default %g), --out PATH,"
              "\n         --json PATH, --prom PATH, --csv PATH,"
              "\n         --gray-faults PROFILE, --profile, --quiet"
              % DEFAULT_INTERVAL)
        return 0
    name = args.pop(0)
    interval = DEFAULT_INTERVAL
    out_path = json_path = prom_path = csv_path = gray = None
    quiet = profile = False
    value_flags = ("--interval", "--out", "--json", "--prom", "--csv",
                   "--gray-faults")
    while args:
        flag = args.pop(0)
        if flag in value_flags and not args:
            print("%s requires a value" % flag)
            return 2
        if flag == "--interval":
            try:
                interval = float(args.pop(0))
            except ValueError:
                print("--interval wants seconds, e.g. 0.01")
                return 2
            if interval <= 0:
                print("--interval must be positive")
                return 2
        elif flag == "--out":
            out_path = args.pop(0)
        elif flag == "--json":
            json_path = args.pop(0)
        elif flag == "--prom":
            prom_path = args.pop(0)
        elif flag == "--csv":
            csv_path = args.pop(0)
        elif flag == "--gray-faults":
            gray = args.pop(0)
            if gray not in GRAY_PROFILES:
                print("no gray-fault profile %r (have: %s)"
                      % (gray, ", ".join(GRAY_PROFILES.names())))
                return 2
        elif flag == "--profile":
            profile = True
        elif flag == "--quiet":
            quiet = True
        else:
            print("unknown option: %r" % flag)
            return 2
    if gray is not None:
        setups.set_gray_faults(gray)
    try:
        report, registry = run_scenario(name, interval=interval,
                                        profile=profile)
    except KeyError as error:
        print(error.args[0])
        return 2
    finally:
        if gray is not None:
            setups.set_gray_faults("none")
    markdown = render_markdown(report)
    if out_path is not None:
        with open(out_path, "w") as handle:
            handle.write(markdown)
        print("wrote %s" % out_path)
    elif not quiet:
        print(markdown)
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print("wrote %s" % json_path)
    if prom_path is not None:
        with open(prom_path, "w") as handle:
            handle.write(series_mod.to_prometheus(registry))
        print("wrote %s" % prom_path)
    if csv_path is not None:
        with open(csv_path, "w") as handle:
            handle.write("\n".join(series_mod.csv_lines(registry)) + "\n")
        print("wrote %s" % csv_path)
    alerts = report["slo"]["alerts"]
    print("%s: %d window(s), %d instrument(s), %d alert(s)%s"
          % (name, report["windows"], len(report["series"]), len(alerts),
             " — " + ", ".join(sorted(set(a["rule"] for a in alerts)))
             if alerts else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
