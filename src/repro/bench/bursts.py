"""Write-burst absorption and tail tolerance (Sections 2.3 and 4.3.1).

The paper's motivation for a large durable write cache: "a write buffer
as large as 0.1% of the storage can absorb write bursts and process
them without stall" — but only if it is safe to *keep* dirty data
buffered, which a volatile cache running with barriers is not.

The experiment: a steady stream of 4KB reads measures latency while a
burst of writes (with the fsync policy of each configuration) slams the
device.  Reported per configuration: read P50/P99 during the burst and
the burst's own completion time.  DuraSSD with barriers off absorbs the
burst at cache speed and barely disturbs the readers; the safe volatile
configuration stalls them behind flush-cache commands.
"""

from ..devices import IORequest, make_durassd, make_ssd_a
from ..host import FileSystem
from ..sim import LatencyRecorder, units
from ..sim.rng import make_rng
from . import setups
from .tableio import render_table

#: (label, device maker, barriers, fsync period during the burst)
CONFIGURATIONS = [
    ("volatile SSD, barriers on (safe)", make_ssd_a, True, 8),
    ("volatile SSD, barriers off (UNSAFE)", make_ssd_a, False, 8),
    ("DuraSSD, barriers off (safe)", make_durassd, False, 8),
]


def run_one(device_maker, barriers, fsync_period, burst_writes=600,
            reader_count=8, telemetry=None):
    sim = setups.fresh_world(telemetry)
    device = device_maker(sim, capacity_bytes=units.GIB)
    filesystem = FileSystem(sim, device, barriers=barriers)
    data = filesystem.create("data", 256 * units.MIB)
    from ..host.fio import _prefill_blank
    _prefill_blank(data)

    burst_window = {"start": None, "end": None}
    read_latency = LatencyRecorder("reads-during-burst")
    baseline_latency = LatencyRecorder("reads-baseline")

    def reader(index):
        rng = make_rng((41, index))
        while burst_window["end"] is None:
            offset = rng.randrange(data.nblocks) * units.LBA_SIZE
            begin = sim.now
            with sim.telemetry.span("burst.read", "workload", reader=index):
                yield from filesystem.pread(data, offset, 1)
            latency = sim.now - begin
            if burst_window["start"] is None:
                baseline_latency.record(latency)
            else:
                read_latency.record(latency)

    def burster():
        yield sim.timeout(0.05)  # let the readers establish a baseline
        rng = make_rng(42)
        burst_window["start"] = sim.now
        for index in range(burst_writes):
            offset = rng.randrange(data.nblocks) * units.LBA_SIZE
            with sim.telemetry.span("burst.write", "workload", i=index):
                yield from filesystem.pwrite(data, offset,
                                             [("burst", index)])
                if fsync_period and (index + 1) % fsync_period == 0:
                    yield from filesystem.fsync(data)
        burst_window["end"] = sim.now

    for index in range(reader_count):
        sim.process(reader(index))
    burst = sim.process(burster())
    sim.run_until(burst)
    return {
        "burst_seconds": burst_window["end"] - burst_window["start"],
        "read_p50_ms": read_latency.percentile(0.5) * 1e3,
        "read_p99_ms": (read_latency.percentile(0.99) * 1e3
                        if read_latency.count else 0.0),
        "baseline_p50_ms": baseline_latency.percentile(0.5) * 1e3,
        "reads_during_burst": read_latency.count,
    }


def run(burst_writes=None, telemetry=None):
    if burst_writes is None:
        burst_writes = setups.ops_scale(600)
    # --telemetry traces the DuraSSD configuration (the last one).
    traced = CONFIGURATIONS[-1][0]
    return [(label, run_one(maker, barriers, period,
                            burst_writes=burst_writes,
                            telemetry=telemetry if label == traced
                            else None))
            for label, maker, barriers, period in CONFIGURATIONS]


def format_table(results):
    headers = ["configuration", "burst time s", "read p50 ms",
               "read p99 ms", "baseline p50 ms"]
    rows = [[label, round(r["burst_seconds"], 3),
             round(r["read_p50_ms"], 2), round(r["read_p99_ms"], 2),
             round(r["baseline_p50_ms"], 2)]
            for label, r in results]
    table = render_table(
        "Write-burst absorption: read latency while a burst lands",
        headers, rows)
    safe_slow = results[0][1]
    durassd = results[2][1]
    note = ("\nburst drains %.0fx faster on DuraSSD-nobarrier; "
            "read p99 during the burst improves %.0fx"
            % (safe_slow["burst_seconds"] / max(1e-9,
                                                durassd["burst_seconds"]),
               safe_slow["read_p99_ms"] / max(1e-9, durassd["read_p99_ms"])))
    return table + note


def main(telemetry=None):
    print(format_table(run(telemetry=telemetry)))


if __name__ == "__main__":
    main()
