"""Table 3 — distribution of LinkBench transaction latency.

Compares MySQL's default configuration (ON/ON, 16KB pages) with the
DuraSSD-best configuration (OFF/OFF, 4KB pages): per-operation mean,
P25/P50/P75/P99 and max latency, in milliseconds.  The paper's
takeaways: means drop 5-45x, P99 drops ~two orders of magnitude.
"""

from ..sim import units
from ..workloads.linkbench import OPERATION_MIX
from .figure5 import run_config
from .tableio import render_table

#: the paper's Table 3 (milliseconds): op -> (default mean, best mean,
#: default p99, best p99)
PAPER_MEANS = {
    "GET_NODE": (67.0, 1.5, 900, 7),
    "COUNT_LINK": (45.5, 1.2, 800, 5),
    "GET_LINK_LIST": (65.3, 1.4, 1000, 7),
    "MULTIGET_LINK": (67.6, 1.3, 1000, 7),
    "ADD_NODE": (51.6, 8.9, 1000, 16),
    "DELETE_NODE": (82.2, 9.6, 1000, 17),
    "UPDATE_NODE": (86.8, 9.8, 2000, 18),
    "ADD_LINK": (214.9, 11.2, 2000, 23),
    "DELETE_LINK": (115.4, 5.4, 2000, 20),
    "UPDATE_LINK": (217.6, 11.1, 2000, 23),
}


def run(ops_per_client=None, telemetry=None):
    """(default_result, best_result) LinkBench runs.

    ``telemetry`` is threaded into the default (ON/ON 16KB) run — the
    configuration whose latency tail the paper dissects.
    """
    default = run_config(True, True, 16 * units.KIB,
                         ops_per_client=ops_per_client, telemetry=telemetry)
    best = run_config(False, False, 4 * units.KIB,
                      ops_per_client=ops_per_client)
    return default, best


def format_table(default, best):
    headers = ["operation", "config", "mean", "p25", "p50", "p75",
               "p99", "max"]
    rows = []
    for name, _weight, kind in OPERATION_MIX:
        for label, result in (("ON/ON 16K", default), ("OFF/OFF 4K", best)):
            summary = result.op_latency[name].summary()
            rows.append([
                name if label.startswith("ON") else "",
                label,
                summary["mean"] * 1e3, summary["p25"] * 1e3,
                summary["p50"] * 1e3, summary["p75"] * 1e3,
                summary["p99"] * 1e3, summary["max"] * 1e3,
            ])
        paper = PAPER_MEANS[name]
        rows.append(["", "(paper means/p99)",
                     paper[0], "-", "-", "-", paper[2], "-"])
        rows.append(["", "", paper[1], "-", "-", "-", paper[3], "-"])
    table = render_table(
        "Table 3: LinkBench latency distribution (milliseconds)",
        headers, rows)
    gain = (default.reads.mean + default.writes.mean) / max(
        1e-9, best.reads.mean + best.writes.mean)
    from ..host.trace import render_latency_histogram
    histograms = (
        "\nread latency, default (ON/ON 16KB):\n"
        + render_latency_histogram(default.reads)
        + "\nread latency, best (OFF/OFF 4KB):\n"
        + render_latency_histogram(best.reads))
    return (table + "\noverall mean improvement: %.1fx (paper: 5-45x)"
            % gain + histograms)


def main(telemetry=None):
    default, best = run(telemetry=telemetry)
    print(format_table(default, best))


if __name__ == "__main__":
    main()
