"""Cross-mechanism comparison: five roads to atomic page writes.

The paper's Sections 2.1 and 5.3 enumerate the ways systems survive
torn pages; this bench runs the *same* LinkBench-style update load over
each and reports throughput, barriers and bytes written:

1. InnoDB **double-write buffer** on a conventional SSD (barriers on),
2. PostgreSQL **full-page writes** (before-images into the WAL),
3. SQLite-style **rollback journal** (the single-writer extreme),
4. FusionIO-style **device atomic writes** (no DWB, but still barriers
   — Ouyang et al.'s ~40% improvement over 1),
5. **DuraSSD**: no DWB, no barriers (the paper's ~25%-plus-6x answer).

All mechanisms protect the data; only the price differs.
"""

from ..db.innodb import InnoDBConfig, InnoDBEngine
from ..db.postgres import PostgresConfig, PostgresEngine
from ..db.sqlite import SQLiteConfig, SQLiteEngine
from ..devices import make_durassd, make_fusionio, make_ssd_a
from ..host import FileSystem
from ..sim import units
from ..workloads.linkbench import LinkBenchConfig, LinkBenchWorkload
from . import setups
from .tableio import render_table


def _linkbench_tps(engine, data_device, ops):
    workload = LinkBenchWorkload(
        engine, LinkBenchConfig(db_bytes=setups.scaled_db_bytes() // 4))
    result = workload.run(clients=32, ops_per_client=ops, warmup_ops=10)
    return {
        "tps": result.tps,
        "write_p99_ms": result.writes.percentile(0.99) * 1e3,
        "barriers": data_device.counters["flushes"],
        "host_mib": (data_device.counters["blocks_written"]
                     * units.LBA_SIZE / units.MIB),
    }


def _engine_world(device_maker, barriers, engine_cls, config):
    sim = setups.fresh_world()
    db_bytes = setups.scaled_db_bytes() // 4
    data_device = device_maker(sim, capacity_bytes=int(db_bytes * 3))
    log_device = device_maker(sim, capacity_bytes=units.GIB)
    data_fs = FileSystem(sim, data_device, barriers=barriers)
    log_fs = FileSystem(sim, log_device, barriers=barriers)
    engine = engine_cls(sim, data_fs, log_fs, config)
    return engine, data_device


def run(ops=None):
    if ops is None:
        ops = setups.ops_scale(60)
    page = 8 * units.KIB
    buffer_bytes = setups.scaled(10) // 4
    results = []

    engine, device = _engine_world(
        make_ssd_a, True, InnoDBEngine,
        InnoDBConfig(page_size=page, buffer_pool_bytes=buffer_bytes,
                     doublewrite=True))
    results.append(("InnoDB doublewrite (SSD, barriers)",
                    _linkbench_tps(engine, device, ops)))

    engine, device = _engine_world(
        make_ssd_a, True, PostgresEngine,
        PostgresConfig(page_size=page, buffer_pool_bytes=buffer_bytes,
                       full_page_writes=True))
    results.append(("PostgreSQL full-page writes (SSD, barriers)",
                    _linkbench_tps(engine, device, ops)))

    engine, device = _engine_world(
        make_fusionio, True, InnoDBEngine,
        InnoDBConfig(page_size=page, buffer_pool_bytes=buffer_bytes,
                     doublewrite=False))
    results.append(("FusionIO atomic writes, no DWB (barriers)",
                    _linkbench_tps(engine, device, ops)))

    engine, device = _engine_world(
        make_durassd, False, InnoDBEngine,
        InnoDBConfig(page_size=page, buffer_pool_bytes=buffer_bytes,
                     doublewrite=False))
    results.append(("DuraSSD, no DWB, no barriers",
                    _linkbench_tps(engine, device, ops)))
    return results


def run_sqlite_comparison(txns=300):
    """The embedded-engine extreme: journal vs journal-off on DuraSSD."""
    results = []
    for journal_mode, barriers, label in (
            ("rollback", True, "rollback journal, barriers (classic)"),
            ("rollback", False, "rollback journal, nobarrier (DuraSSD)"),
            ("off", False, "journal OFF, nobarrier (DuraSSD atomic)")):
        sim = setups.fresh_world()
        device = make_durassd(sim, capacity_bytes=units.GIB)
        fs = FileSystem(sim, device, barriers=barriers)
        engine = SQLiteEngine(sim, fs, SQLiteConfig(
            journal_mode=journal_mode))
        from repro.sim.rng import make_rng
        rng = make_rng(17)

        def body():
            for _ in range(txns):
                pages = [rng.randrange(engine.config.n_pages)
                         for _ in range(2)]
                yield from engine.write_transaction(pages)

        process = sim.process(body())
        sim.run_until(process)
        results.append({
            "label": label,
            "tps": txns / sim.now,
            "barriers": engine.counters["barriers"],
            "journal_pages": engine.counters["journal_pages"],
        })
    return results


def format_table(results):
    headers = ["mechanism", "TPS", "write p99 ms", "barriers", "host MiB"]
    rows = [[label, round(r["tps"]), round(r["write_p99_ms"], 1),
             r["barriers"], round(r["host_mib"], 1)]
            for label, r in results]
    return render_table(
        "Atomic-page-write mechanisms under the same update load",
        headers, rows)


def format_sqlite_table(results):
    headers = ["SQLite mode", "txn/s", "barriers", "journal pages"]
    rows = [[r["label"], round(r["tps"]), r["barriers"],
             r["journal_pages"]] for r in results]
    return render_table("Embedded-engine journal cost", headers, rows)


def main():
    print(format_table(run()))
    print()
    print(format_sqlite_table(run_sqlite_comparison()))


if __name__ == "__main__":
    main()
