"""ASCII charts for figure-shaped results.

The paper's Figures 5 and 6 are bar/line charts; the benches print the
numbers as tables, and these helpers render the same data as terminal
graphics so the *shape* comparison (who wins, where lines cross) is
visible at a glance without a plotting stack.
"""


def render_bar_chart(title, labels, values, width=50, unit=""):
    """Horizontal bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values) if values else 0
    label_width = max((len(label) for label in labels), default=0)
    lines = [title]
    for label, value in zip(labels, values):
        bar = "#" * (int(width * value / peak) if peak else 0)
        lines.append("%-*s |%-*s {:,.0f}%s".format(value)
                     % (label_width, label, width, bar, unit))
    return "\n".join(lines)


def render_grouped_bars(title, group_labels, series, width=40, unit=""):
    """Several series per group, one bar row per (group, series).

    ``series`` is ``{series_name: [value per group]}``.
    """
    peak = max((value for values in series.values() for value in values),
               default=0)
    name_width = max((len(name) for name in series), default=0)
    lines = [title]
    for index, group in enumerate(group_labels):
        lines.append("%s:" % group)
        for name, values in series.items():
            value = values[index]
            bar = "#" * (int(width * value / peak) if peak else 0)
            lines.append("  %-*s |%-*s {:,.0f}%s".format(value)
                         % (name_width, name, width, bar, unit))
    return "\n".join(lines)


def render_line_chart(title, x_labels, series, height=12, width=None):
    """A multi-series line chart on a character grid.

    ``series`` is ``{name: [y per x]}``; each series gets a distinct
    plotting character.  Good enough to show the crossovers and slopes
    of Figure 6.
    """
    marks = "ox+*#@%"
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title + "\n(no data)"
    low, high = min(all_values), max(all_values)
    if high == low:
        high = low + 1
    columns = width or max(30, 6 * len(x_labels))
    grid = [[" "] * columns for _ in range(height)]
    n_points = len(x_labels)

    def cell(x_index, value):
        col = (x_index * (columns - 1)) // max(1, n_points - 1)
        row = height - 1 - int((value - low) / (high - low) * (height - 1))
        return row, col

    for series_index, (name, values) in enumerate(series.items()):
        mark = marks[series_index % len(marks)]
        for x_index, value in enumerate(values):
            row, col = cell(x_index, value)
            grid[row][col] = mark

    lines = [title]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = "%10.3g |" % high
        elif row_index == height - 1:
            label = "%10.3g |" % low
        else:
            label = "%10s |" % ""
        lines.append(label + "".join(row))
    lines.append("%10s +%s" % ("", "-" * columns))
    lines.append("%10s  %s" % ("", "  ".join(str(x) for x in x_labels)))
    legend = "   ".join("%s=%s" % (marks[i % len(marks)], name)
                        for i, name in enumerate(series))
    lines.append("%10s  legend: %s" % ("", legend))
    return "\n".join(lines)
