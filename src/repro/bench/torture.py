"""Crash-consistency torture sweeps over the device x engine matrix.

Usage::

    python -m repro torture                       # durassd / innodb, full sweep
    python -m repro torture innodb ssd-a --barriers off
    python -m repro torture --smoke               # CI: every preset, quick
    python -m repro torture --ops 300 --out repro.json

The smoke mode sweeps every device preset under InnoDB/LinkBench with
auto barrier policy (off only for devices claiming a durable cache) and
exits non-zero if any *promising* configuration violates an invariant at
any cut point — plus a negative control proving the detector still
catches the volatile-cache-no-barrier anomalies.  A failing or violating
sweep can be minimized to a replayable JSON artifact with ``--out``.
"""

import json
import sys
import time

from ..failures import torture as harness
from . import setups

DEVICES = ("hdd", "ssd-a", "ssd-b", "durassd")

SMOKE_BASE_OPS = 40


def run_sweep(engine, device, ops, seed=11, barriers=None, doublewrite=True,
              max_trials=None, nested_stride=5, stripe=1):
    scenario = harness.TortureScenario(engine=engine, device=device,
                                       ops=ops, seed=seed, barriers=barriers,
                                       doublewrite=doublewrite, stripe=stripe)
    result = harness.sweep(scenario, max_trials=max_trials,
                           nested_stride=nested_stride)
    return scenario, result


def _print_summary(label, result, elapsed):
    summary = result.summary()
    verdict = "PASS" if result.clean else "FAIL"
    if not summary["expected_clean"] and summary["violations"]:
        verdict = "FINDS"  # anomalies found where none were promised
    print("%-28s %-10s trials=%-4d nested=%-3d violations=%-6d %5.1fs"
          % (label, verdict, summary["trials"], summary["nested_trials"],
             summary["violations"], elapsed))
    if result.first_failure is not None:
        print("    first failing cut: t=%.6f" % result.first_failure)


def smoke(ops=None, seed=11):
    """Quick sweep of every device preset; the CI torture gate."""
    ops = ops if ops is not None else setups.ops_scale(SMOKE_BASE_OPS)
    print("torture smoke: %d ops per sweep, seed %d" % (ops, seed))
    exit_code = 0
    for device in DEVICES:
        begin = time.time()
        _scenario, result = run_sweep("innodb", device, ops, seed=seed)
        _print_summary("innodb/%s" % device, result, time.time() - begin)
        if not result.clean:
            exit_code = 1
    # Striped data target: a power cut must leave every stripe member
    # mutually consistent — the checker sees one flat LBA space, so any
    # member that lags an acked barrier shows up as a torn page or a
    # lost committed write.
    begin = time.time()
    _scenario, result = run_sweep("innodb", "durassd", ops, seed=seed,
                                  stripe=2)
    _print_summary("innodb/durassd (stripe=2)", result, time.time() - begin)
    if not result.clean:
        exit_code = 1
    # Negative control: with barriers off on a volatile cache the sweep
    # MUST surface anomalies, or the detector itself is broken.
    begin = time.time()
    _scenario, control = run_sweep("innodb", "ssd-a", ops, seed=seed,
                                   barriers=False)
    found = sum(len(trial.violations) for trial in control.trials)
    _print_summary("innodb/ssd-a (no barriers)", control,
                   time.time() - begin)
    if found == 0:
        print("    negative control found no violations: detector broken")
        exit_code = 1
    print("torture smoke: %s" % ("ok" if exit_code == 0 else "FAILED"))
    return exit_code


def full(engine, device, ops, seed, barriers, doublewrite, max_trials,
         out_path=None):
    begin = time.time()
    scenario, result = run_sweep(engine, device, ops, seed=seed,
                                 barriers=barriers, doublewrite=doublewrite,
                                 max_trials=max_trials)
    _print_summary("%s/%s" % (engine, device), result, time.time() - begin)
    summary = result.summary()
    print("  mode=%s candidates=%d expected_clean=%r"
          % (summary["mode"], summary["candidates"],
             summary["expected_clean"]))
    kinds = {}
    for trial in result.trials:
        for violation in trial.violations:
            kind = ":".join(violation.split(":")[:2])
            kinds[kind] = kinds.get(kind, 0) + 1
    for kind in sorted(kinds):
        print("  %-28s %d" % (kind, kinds[kind]))
    if out_path and (result.failures or summary["violations"]):
        predicate = ((lambda trial: trial.failed) if result.failures
                     else (lambda trial: not trial.clean))
        artifact = harness.minimize(scenario, result.recording.ops,
                                    predicate=predicate)
        if artifact is None:
            print("  minimization found no stable repro")
        else:
            with open(out_path, "w") as handle:
                json.dump(artifact, handle, indent=2, sort_keys=True)
            print("  minimized repro (%d ops, cut t=%.6f): %s"
                  % (len(artifact["ops"]), artifact["cut_time"], out_path))
    return 1 if result.failures else 0


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0

    def take_option(name, default=None):
        if name in argv:
            index = argv.index(name)
            value = argv[index + 1]
            del argv[index:index + 2]
            return value
        return default

    smoke_mode = "--smoke" in argv
    if smoke_mode:
        argv.remove("--smoke")
    no_doublewrite = "--no-doublewrite" in argv
    if no_doublewrite:
        argv.remove("--no-doublewrite")
    ops = take_option("--ops")
    seed = int(take_option("--seed", "11"))
    barriers = take_option("--barriers", "auto")
    max_trials = take_option("--max-trials")
    out_path = take_option("--out")
    if barriers not in ("auto", "on", "off"):
        print("--barriers must be auto, on or off")
        return 2
    barriers = None if barriers == "auto" else (barriers == "on")
    if smoke_mode:
        return smoke(ops=int(ops) if ops else None, seed=seed)
    engine = argv[0] if argv else "innodb"
    device = argv[1] if len(argv) > 1 else "durassd"
    return full(engine, device,
                ops=int(ops) if ops else setups.ops_scale(200),
                seed=seed, barriers=barriers,
                doublewrite=not no_doublewrite,
                max_trials=int(max_trials) if max_trials else None,
                out_path=out_path)


if __name__ == "__main__":
    raise SystemExit(main())
