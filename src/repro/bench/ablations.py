"""Ablation benches for the design choices the paper argues in prose.

These go beyond the numbered tables/figures:

* **write amplification / lifetime** (Sections 1 and 6): the paper
  claims avoiding redundant writes plus 4KB pages cuts the data written
  to flash by more than 50%, prolonging device life.
* **capacitor budget** (Section 3.1): the dump must cover the buffer
  pool + mapping delta; an under-provisioned bank loses acked data.
* **mapping granularity** (Section 3.1.2): 4KB mapping doubles the
  small-write drain rate by pairing, at ~1% DRAM cost.
* **flush-vs-ordered-NCQ** (Section 3.3): how much throughput the
  no-flush design recovers compared with flushing on every barrier.
"""

from ..core import CapacitorBank, DuraSSD
from ..devices import IORequest
from ..devices.presets import durassd_spec
from ..failures import PowerFailureInjector, check_device
from ..host import FileSystem, FioJob, run_fio
from ..sim import units
from ..workloads.linkbench import LinkBenchConfig, LinkBenchWorkload
from . import setups
from .tableio import render_table


# --- write amplification & lifetime ------------------------------------------
def run_write_amplification(ops_per_client=None):
    """Bytes written to flash per logical page update, across the four
    Figure-5 configurations (plus the page-size effect)."""
    results = []
    cases = [
        ("ON/ON 16KB (default)", True, True, 16 * units.KIB),
        ("ON/OFF 16KB", True, False, 16 * units.KIB),
        ("OFF/OFF 16KB", False, False, 16 * units.KIB),
        ("OFF/OFF 4KB (best)", False, False, 4 * units.KIB),
    ]
    for label, barrier, doublewrite, page_size in cases:
        sim = setups.fresh_world()
        engine, devices = setups.mysql_setup(sim, page_size, barrier,
                                             doublewrite, buffer_gb=10)
        workload = LinkBenchWorkload(
            engine, LinkBenchConfig(db_bytes=setups.scaled_db_bytes()))
        ops = ops_per_client if ops_per_client is not None \
            else setups.ops_scale(60)
        workload.run(clients=64, ops_per_client=ops, warmup_ops=10)
        data_device = devices[0]
        flushed = engine.counters["pages_flushed"]
        host_blocks = data_device.counters["blocks_written"]
        nand_pages = data_device.ftl.counters["nand_page_writes"]
        nand_bytes = nand_pages * data_device.array.geometry.page_size
        results.append({
            "label": label,
            "logical_page_flushes": flushed,
            "host_bytes": host_blocks * units.LBA_SIZE,
            "nand_bytes": nand_bytes,
            "bytes_per_flush": (nand_bytes / flushed) if flushed else 0.0,
        })
    return results


def format_write_amplification(results):
    headers = ["configuration", "page flushes", "host MB", "NAND MB",
               "NAND KB/flush"]
    rows = [[r["label"], r["logical_page_flushes"],
             round(r["host_bytes"] / units.MIB, 1),
             round(r["nand_bytes"] / units.MIB, 1),
             round(r["bytes_per_flush"] / units.KIB, 1)]
            for r in results]
    default = results[0]["bytes_per_flush"]
    best = results[-1]["bytes_per_flush"]
    saved = 100.0 * (1 - best / default) if default else 0.0
    table = render_table(
        "Ablation: write amplification / device lifetime", headers, rows)
    return table + ("\nflash bytes per logical flush, default vs best: "
                    "-%.0f%% (paper: 'reduced more than 50%%')" % saved)


# --- capacitor budget sweep ------------------------------------------------------
def run_capacitor_sweep(counts=(0, 1, 2, 4, 8, 15), writes=400):
    """Acked 4KB writes lost at power failure vs capacitor count."""
    results = []
    for count in counts:
        sim = setups.fresh_world()
        bank = CapacitorBank(count=count)
        device = DuraSSD(sim, durassd_spec(), capacitors=bank)
        device.record_acks = True

        def hammer(device=device):
            for i in range(writes):
                request = IORequest("write", i % device.exported_lbas, 1,
                                    payload=[("w", i)])
                yield device.submit(request)

        process = sim.process(hammer())
        sim.run_until(process)
        injector = PowerFailureInjector(sim, [device])
        injector.execute_cut()
        injector.reboot_all()
        report = check_device(device)
        results.append({
            "capacitors": count,
            "budget_mib": bank.dump_budget_bytes / units.MIB,
            "acked_writes": writes,
            "lost": len(report.lost_writes) + len(report.stale_blocks),
            "dump_fit": device.recovery_manager.last_dump_fit,
        })
    return results


def format_capacitor_sweep(results):
    headers = ["capacitors", "budget MiB", "acked writes", "lost blocks",
               "dump fit"]
    rows = [[r["capacitors"], round(r["budget_mib"], 1), r["acked_writes"],
             r["lost"], "yes" if r["dump_fit"] else "NO"]
            for r in results]
    return render_table(
        "Ablation: capacitor budget vs durability", headers, rows)


# --- mapping granularity (pairing) -------------------------------------------------
def run_mapping_granularity(ios=2000):
    """Sustained 4KB random-write drain with 4KB vs 8KB mapping."""
    results = []
    for unit in (4 * units.KIB, 8 * units.KIB):
        sim = setups.fresh_world()
        spec = durassd_spec().replace(mapping_unit=unit)
        device = DuraSSD(sim, spec)
        filesystem = FileSystem(sim, device, barriers=False)
        job = FioJob(rw="randwrite", block_size=4 * units.KIB,
                     numjobs=64, ios_per_job=max(10, ios // 64),
                     fsync_every=0)
        iops = run_fio(sim, filesystem, job).iops
        mapping_entries = device.ftl.exported_slots
        results.append({
            "mapping": "%dKB" % (unit // units.KIB),
            "iops": iops,
            "mapping_entries": mapping_entries,
            "map_dram_mib": mapping_entries * 4 / units.MIB,
        })
    return results


def format_mapping_granularity(results):
    headers = ["mapping unit", "4KB write IOPS", "map entries", "map DRAM MiB"]
    rows = [[r["mapping"], round(r["iops"]), r["mapping_entries"],
             round(r["map_dram_mib"], 1)] for r in results]
    speedup = results[0]["iops"] / max(1e-9, results[1]["iops"])
    table = render_table(
        "Ablation: 4KB-over-8KB mapping (write pairing)", headers, rows)
    return table + ("\npairing speed-up: %.2fx for 2x mapping DRAM "
                    "(paper: ~1%% device cost)" % speedup)


# --- flush semantics alternatives (Section 3.3) -----------------------------------
def run_flush_semantics(ios=1500):
    """fsync-heavy throughput under three barrier policies on DuraSSD."""
    cases = [
        ("flush every fsync (barrier on)", True, True),
        ("no flush, ordered NCQ (nobarrier)", False, True),
        ("no flush, unordered NCQ", False, False),
    ]
    results = []
    for label, barriers, ordered in cases:
        sim = setups.fresh_world()
        device = setups.make_device(sim, "durassd")
        filesystem = FileSystem(sim, device, barriers=barriers,
                                ordered_queue=ordered)
        job = FioJob(rw="randwrite", block_size=4 * units.KIB,
                     ios_per_job=min(ios, setups.ops_scale(ios)),
                     fsync_every=1)
        iops = run_fio(sim, filesystem, job).iops
        results.append({"label": label, "iops": iops})
    return results


def format_flush_semantics(results):
    headers = ["barrier policy", "fsync-per-write IOPS"]
    rows = [[r["label"], round(r["iops"])] for r in results]
    return render_table(
        "Ablation: flush-cache vs ordered-NCQ (Section 3.3)",
        headers, rows)


# --- GC victim policy (Section 3.1.1's wear-aware scheduling) ----------------
def run_victim_policies(rounds=400):
    """Wear spread and GC effort under a hot/cold skew, greedy vs
    cost-benefit victim selection."""
    from ..flash import FlashArray, FlashGeometry, FlashTiming, PageMappingFTL
    from ..sim.rng import make_rng
    results = []
    for policy in ("greedy", "cost-benefit"):
        sim = setups.fresh_world()
        geometry = FlashGeometry(channels=2, packages_per_channel=2,
                                 chips_per_package=2, planes_per_chip=2,
                                 blocks_per_plane=8, pages_per_block=16,
                                 page_size=8 * units.KIB)
        array = FlashArray(sim, geometry, FlashTiming(), lanes=8)
        ftl = PageMappingFTL(sim, array, mapping_unit=4 * units.KIB,
                             victim_policy=policy)
        rng = make_rng(23)

        def churn():
            for round_no in range(rounds):
                hot = [(rng.randrange(32), round_no) for _ in range(12)]
                cold = [(32 + rng.randrange(256), round_no)
                        for _ in range(2)]
                yield from ftl.write_slots(hot + cold)

        process = sim.process(churn())
        sim.run_until(process)
        min_wear, max_wear, total = ftl.wear()
        results.append({
            "policy": policy,
            "gc_runs": ftl.counters["gc_runs"],
            "moved_slots": ftl.counters["gc_moved_slots"],
            "wear_min": min_wear,
            "wear_max": max_wear,
            "wear_total": total,
        })
    return results


def format_victim_policies(results):
    headers = ["victim policy", "GC runs", "slots moved", "wear min/max",
               "total erases"]
    rows = [[r["policy"], r["gc_runs"], r["moved_slots"],
             "%d/%d" % (r["wear_min"], r["wear_max"]), r["wear_total"]]
            for r in results]
    return render_table(
        "Ablation: GC victim policy under hot/cold skew", headers, rows)


def main():
    print(format_write_amplification(run_write_amplification()))
    print()
    print(format_capacitor_sweep(run_capacitor_sweep()))
    print()
    print(format_mapping_granularity(run_mapping_granularity()))
    print()
    print(format_flush_semantics(run_flush_semantics()))
    print()
    print(format_victim_policies(run_victim_policies()))


if __name__ == "__main__":
    main()
