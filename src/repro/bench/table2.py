"""Table 2 — effect of page size on IOPS (DuraSSD and HDD).

DuraSSD: read-only at 128 threads; write-only with fsync every write,
every 256 writes, and 128 threads with nobarrier.  HDD: read-only and
write-only at 128 threads.  Page sizes 16/8/4KB.
"""

from ..host import FileSystem, FioJob, run_fio
from ..sim import units
from . import setups
from .tableio import render_table

PAGE_SIZES = (16 * units.KIB, 8 * units.KIB, 4 * units.KIB)

PAPER_DURASSD = {
    "read-only (128 thr)": (29870, 57847, 89083),
    "write-only (1-fsync)": (196, 206, 225),
    "write-only (256-fsync)": (4563, 7978, 12647),
    "write-only (128 nobarrier)": (13446, 25546, 49009),
}
PAPER_HDD = {
    "read-only (128 thr)": (516, 528, 538),
    "write-only (128 thr)": (428, 439, 444),
}


def _measure(device_kind, rw, numjobs, fsync_every, barriers, page_size,
             cache_enabled=True):
    sim = setups.fresh_world()
    device = setups.make_device(sim, device_kind,
                                cache_enabled=cache_enabled)
    filesystem = FileSystem(sim, device, barriers=barriers)
    per_job = setups.ops_scale(60 if numjobs > 1 else 400)
    if device_kind == "hdd":
        per_job = max(8, per_job // 8)
    job = FioJob(rw=rw, block_size=page_size, numjobs=numjobs,
                 ios_per_job=per_job, fsync_every=fsync_every,
                 file_size=128 * units.MIB)
    return run_fio(sim, filesystem, job).iops


def run():
    """Returns {section: {row_label: [iops per page size]}}."""
    durassd = {
        "read-only (128 thr)": [
            _measure("durassd", "randread", 128, 0, True, ps)
            for ps in PAGE_SIZES],
        "write-only (1-fsync)": [
            _measure("durassd", "randwrite", 1, 1, True, ps)
            for ps in PAGE_SIZES],
        "write-only (256-fsync)": [
            _measure("durassd", "randwrite", 1, 256, True, ps)
            for ps in PAGE_SIZES],
        "write-only (128 nobarrier)": [
            _measure("durassd", "randwrite", 128, 0, False, ps)
            for ps in PAGE_SIZES],
    }
    hdd = {
        "read-only (128 thr)": [
            _measure("hdd", "randread", 128, 0, True, ps)
            for ps in PAGE_SIZES],
        "write-only (128 thr)": [
            _measure("hdd", "randwrite", 128, 0, True, ps)
            for ps in PAGE_SIZES],
    }
    return {"durassd": durassd, "hdd": hdd}


def format_table(results):
    headers = ["workload", "16KB", "8KB", "4KB"]
    out = []
    for section, paper in (("durassd", PAPER_DURASSD), ("hdd", PAPER_HDD)):
        rows = []
        for label, values in results[section].items():
            rows.append([label] + [round(v) for v in values])
            rows.append(["  (paper)"] + list(paper[label]))
        out.append(render_table(
            "Table 2(%s): page size vs IOPS — %s"
            % ("a" if section == "durassd" else "b", section),
            headers, rows))
    return "\n\n".join(out)


def main():
    print(format_table(run()))


if __name__ == "__main__":
    main()
