"""Figure 5 — LinkBench transaction throughput on MySQL/InnoDB.

Four configurations (write-barrier on/off x double-write-buffer on/off)
by three page sizes (16/8/4KB), 128 clients, 10GB buffer pool on a
100GB database (scaled).  The paper's headline: turning barriers off
buys ~6x, dropping the double-write buffer buys ~2x (barriers on) or
~25% (barriers off), and the best/worst gap exceeds 20x.
"""

from ..sim import units
from ..workloads.linkbench import LinkBenchConfig, LinkBenchWorkload
from . import setups
from .tableio import render_table

PAGE_SIZES = (16 * units.KIB, 8 * units.KIB, 4 * units.KIB)
CONFIGS = [  # (barrier, doublewrite)
    (True, True), (True, False), (False, True), (False, False),
]

#: approximate TPS read off Figure 5's bars (the paper prints no table)
PAPER_APPROX = {
    (True, True): (1300, 2500, 2300),
    (True, False): (2600, 4500, 4300),
    (False, True): (12000, 18000, 25000),
    (False, False): (15000, 24000, 32000),
}


def run_config(barrier, doublewrite, page_size, clients=128,
               ops_per_client=None, buffer_gb=10, telemetry=None):
    sim = setups.fresh_world(telemetry)
    engine, _devices = setups.mysql_setup(sim, page_size, barrier,
                                          doublewrite, buffer_gb=buffer_gb)
    workload = LinkBenchWorkload(
        engine, LinkBenchConfig(db_bytes=setups.scaled_db_bytes()))
    if ops_per_client is None:
        # Quick mode still needs enough operations to reach the dirty
        # steady state, or the doublewrite/barrier knobs look free.
        ops_per_client = max(100, setups.ops_scale(150))
    return workload.run(clients=clients, ops_per_client=ops_per_client,
                        warmup_ops=40)


#: configuration traced under ``--telemetry``: MySQL defaults, 16KB
TRACED_CONFIG = (True, True, 16 * units.KIB)


def run(telemetry=None):
    """{(barrier, dwb): [LinkBenchResult per page size]}

    ``telemetry`` is threaded into the :data:`TRACED_CONFIG` run only
    (one hub binds one simulator); tracing does not perturb the TPS.
    """
    results = {}
    for barrier, doublewrite in CONFIGS:
        results[(barrier, doublewrite)] = [
            run_config(barrier, doublewrite, page_size,
                       telemetry=telemetry
                       if (barrier, doublewrite, page_size) == TRACED_CONFIG
                       else None)
            for page_size in PAGE_SIZES]
    return results


def format_table(results):
    headers = ["barrier/dwb", "16KB", "8KB", "4KB"]
    rows = []
    for key in CONFIGS:
        label = "%s/%s" % ("ON" if key[0] else "OFF",
                           "ON" if key[1] else "OFF")
        rows.append([label] + [round(r.tps) for r in results[key]])
        rows.append(["  (paper~)"] + list(PAPER_APPROX[key]))
    best = max(r.tps for row in results.values() for r in row)
    worst = min(r.tps for row in results.values() for r in row)
    table = render_table(
        "Figure 5: LinkBench transactions per second", headers, rows)
    from .charts import render_grouped_bars
    series = {}
    for key in CONFIGS:
        label = "%s/%s" % ("ON" if key[0] else "OFF",
                           "ON" if key[1] else "OFF")
        series[label] = [r.tps for r in results[key]]
    chart = render_grouped_bars("\nFigure 5 as bars (TPS):",
                                ["16KB", "8KB", "4KB"], series)
    return table + ("\nbest/worst gap: %.1fx (paper: >20x)\n"
                    % (best / worst)) + chart


def main(telemetry=None):
    print(format_table(run(telemetry)))


if __name__ == "__main__":
    main()
