"""Plain-text table rendering for experiment output.

Every bench prints the same artifact the paper shows — rows and series,
with the paper's published number next to the measured one so the
paper-vs-measured comparison is part of the output itself.
"""


def render_table(title, headers, rows):
    """A fixed-width text table.

    ``rows`` are sequences of cells; cells are stringified with
    reasonable numeric formatting.
    """
    def fmt(cell):
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return "{:,.0f}".format(cell)
            if abs(cell) >= 10:
                return "%.1f" % cell
            return "%.3f" % cell
        if isinstance(cell, int):
            return "{:,d}".format(cell)
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "+".join("-" * (width + 2) for width in widths)
    out = [title, line]
    out.append(" | ".join(header.ljust(width)
                          for header, width in zip(headers, widths)))
    out.append(line)
    for row in text_rows:
        out.append(" | ".join(cell.rjust(width)
                              for cell, width in zip(row, widths)))
    out.append(line)
    return "\n".join(out)


def ratio_note(measured, paper):
    """'x0.93 of paper' style annotation; '-' when no reference."""
    if not paper:
        return "-"
    return "x%.2f" % (measured / paper)


def comparison_rows(label_measured_paper):
    """[(label, measured, paper)] -> rows with a ratio column."""
    rows = []
    for label, measured, paper in label_measured_paper:
        rows.append([label, measured, paper if paper else "-",
                     ratio_note(measured, paper)])
    return rows
