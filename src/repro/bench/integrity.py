"""End-to-end data-integrity sweep: silent corruption vs armed defenses.

Usage::

    python -m repro integrity                  # full profile x defense sweep
    python -m repro integrity --smoke          # CI integrity gate
    python -m repro integrity --profile bit-rot --mirror 2
    python -m repro integrity --ops 400 --seed 7

Each cell runs a seeded LinkBench stream over devices injected with a
named silent-corruption profile (:data:`CORRUPTION_PROFILES`: bit rot,
read disturb, misdirected writes, lost writes, or the mix) while one
defense configuration is armed:

* ``mirror2+scrub`` — a checksum-verified RAID-1 mirror with
  read-repair plus the background scrubber;
* ``checksums`` — block checksums on a single device: detection and
  fail-stop, no redundancy to repair from.

A passive audit layer *outside* the defense under test re-verifies
every block the stream reads; it is the harness's oracle, invisible to
the SLO monitor.  A cell passes when the stream completes, **zero**
corrupt reads were served undetected, and the integrity SLO rules fire
so the verdict carries a corruption-detection latency.  A
corruption-free control with the same defenses armed must stay silent
— no alerts, no mismatches — pinning the false-positive rate at zero.
"""

import sys
import time

from ..failures import chaos as harness
from . import setups
from .scenarios import CORRUPTION_PROFILES

#: (label, chaos_scenario kwargs) — the defense arms swept per profile
DEFENSES = (
    ("mirror2+scrub", {"mirror": 2, "checksums": True, "scrub": True}),
    ("checksums", {"mirror": 1, "checksums": True}),
)

#: corruption surfaces only once reads miss the caches; shorter streams
#: can finish before a single poisoned block is ever read back
BASE_OPS = 200

#: the full sweep needs longer streams: read-disturb poisons blocks
#: only *behind* reads, so its first detectable re-read comes late
SWEEP_OPS = 400


def run_cell(corruption, defense_kwargs, seed, ops, engine="innodb",
             device="durassd"):
    """One integrity cell; returns the chaos-harness result."""
    scenario = harness.chaos_scenario(
        engine=engine, device=device, profile="none", seed=seed, ops=ops,
        corruption=corruption, **defense_kwargs)
    return harness.run_chaos(scenario)


def _print_cell(label, result, elapsed, expect_alerts):
    ok = (result.completed and not result.failed
          and result.undetected_corrupt_reads == 0)
    if expect_alerts and not result.alerts:
        ok = False
    if not expect_alerts and result.alerts:
        ok = False
    detect = ("%.0fms" % (result.detection_latency_s * 1e3)
              if result.detection_latency_s is not None else "-")
    print("%-36s %-5s det=%-6s caught=%-4d undetected=%-3d alerts=%-2d "
          "%4.1fs"
          % (label, "PASS" if ok else "FAIL", detect,
             result.ops_corrupt_detected, result.undetected_corrupt_reads,
             len(result.alerts), elapsed))
    for violation in result.violations:
        print("    violation: %s" % violation)
    return ok


def sweep(profiles=None, seed=11, ops=None, mirror=None):
    """The full (or filtered) profile x defense sweep plus the control."""
    ops = ops if ops is not None else max(setups.ops_scale(SWEEP_OPS),
                                          SWEEP_OPS)
    profiles = list(profiles) if profiles else CORRUPTION_PROFILES.names()
    defenses = DEFENSES
    if mirror is not None:
        defenses = ((("mirror%d+scrub" % mirror) if mirror > 1
                     else "checksums",
                     {"mirror": mirror, "checksums": True,
                      "scrub": mirror > 1}),)
    print("integrity sweep: %d ops per cell, seed %d" % (ops, seed))
    exit_code = 0
    for profile in profiles:
        for label, kwargs in defenses:
            begin = time.time()
            result = run_cell(profile, kwargs, seed, ops)
            if not _print_cell("%s / %s" % (profile, label), result,
                               time.time() - begin, expect_alerts=True):
                exit_code = 1
    # False-positive control: defenses armed, nothing injected.
    begin = time.time()
    result = run_cell(None, {"mirror": 2, "checksums": True, "scrub": True},
                      seed, ops)
    if not _print_cell("control / mirror2+scrub", result,
                       time.time() - begin, expect_alerts=False):
        exit_code = 1
    print("integrity sweep: %s" % ("ok" if exit_code == 0 else "FAILED"))
    return exit_code


def smoke(seed=11, ops=None):
    """The CI integrity gate: one cell per defense plus the control."""
    ops = ops if ops is not None else max(setups.ops_scale(BASE_OPS),
                                          BASE_OPS)
    print("integrity smoke: %d ops per cell, seed %d" % (ops, seed))
    exit_code = 0
    cells = (
        ("corruption-mix", DEFENSES[0]),
        ("bit-rot", DEFENSES[1]),
    )
    for profile, (label, kwargs) in cells:
        begin = time.time()
        result = run_cell(profile, kwargs, seed, ops)
        if not _print_cell("%s / %s" % (profile, label), result,
                           time.time() - begin, expect_alerts=True):
            exit_code = 1
    begin = time.time()
    result = run_cell(None, {"mirror": 2, "checksums": True, "scrub": True},
                      seed, ops)
    if not _print_cell("control / mirror2+scrub", result,
                       time.time() - begin, expect_alerts=False):
        exit_code = 1
    print("integrity smoke: %s" % ("ok" if exit_code == 0 else "FAILED"))
    return exit_code


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("corruption profiles:")
        for line in CORRUPTION_PROFILES.listing():
            print(line)
        return 0

    def take_option(name, default=None):
        if name in argv:
            index = argv.index(name)
            value = argv[index + 1]
            del argv[index:index + 2]
            return value
        return default

    smoke_mode = "--smoke" in argv
    if smoke_mode:
        argv.remove("--smoke")
    ops = take_option("--ops")
    seed = int(take_option("--seed", "11"))
    profile = take_option("--profile")
    mirror = take_option("--mirror")
    if profile and profile not in CORRUPTION_PROFILES:
        print("no corruption profile %r (have: %s)"
              % (profile, ", ".join(CORRUPTION_PROFILES.names())))
        return 2
    if smoke_mode:
        return smoke(seed=seed, ops=int(ops) if ops else None)
    return sweep(profiles=[profile] if profile else None, seed=seed,
                 ops=int(ops) if ops else None,
                 mirror=int(mirror) if mirror else None)


if __name__ == "__main__":
    raise SystemExit(main())
