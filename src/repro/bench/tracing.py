"""Traced scenarios for ``python -m repro trace <experiment>``.

Each scenario builds one quick, representative world of the named
experiment with an *enabled* telemetry hub, runs it, and hands the hub
back.  The CLI then writes a Chrome ``trace_event`` JSON (load it at
``ui.perfetto.dev`` or ``chrome://tracing``), optionally the raw JSONL
event stream, and prints an ASCII summary and flamegraph.

Scenarios are deliberately small — a trace of a few hundred operations
is readable; a trace of a full benchmark sweep is not.  To trace a full
benchmark run instead, use ``python -m repro <experiment> --telemetry``.
"""

from ..telemetry import Telemetry
from .scenarios import TRACED

#: the shared traced-scenario registry (see repro.bench.scenarios)
SCENARIOS = TRACED


def run_scenario(name, sample_interval=0.002):
    """Run a traced scenario; returns ``(telemetry, outcome_line)``."""
    fn = SCENARIOS.get(name)
    telemetry = Telemetry(enabled=True, sample_interval=sample_interval)
    outcome = fn(telemetry)
    return telemetry, outcome


def main(argv):
    """``python -m repro trace <experiment> [--out X] [--jsonl Y]``."""
    args = list(argv)
    if not args or args[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("scenarios:")
        for line in SCENARIOS.listing():
            print(line)
        print("\noptions: --out PATH (default trace.json), --jsonl PATH,"
              "\n         --sample-interval SECONDS, --quiet")
        return 0
    name = args.pop(0)
    out, jsonl_path, quiet = "trace.json", None, False
    sample_interval = 0.002
    while args:
        flag = args.pop(0)
        if flag in ("--out", "--jsonl", "--sample-interval") and not args:
            print("%s requires a value" % flag)
            return 2
        if flag == "--out":
            out = args.pop(0)
        elif flag == "--jsonl":
            jsonl_path = args.pop(0)
        elif flag == "--sample-interval":
            try:
                sample_interval = float(args.pop(0))
            except ValueError:
                print("--sample-interval wants seconds, e.g. 0.002")
                return 2
            if sample_interval <= 0:
                print("--sample-interval must be positive")
                return 2
        elif flag == "--quiet":
            quiet = True
        else:
            print("unknown option: %r" % flag)
            return 2
    try:
        telemetry, outcome = run_scenario(name,
                                          sample_interval=sample_interval)
    except KeyError as error:
        print(error.args[0])
        return 2
    telemetry.write_chrome_trace(out)
    print(outcome)
    print("chrome trace: %s (%d events, tracks: %s)"
          % (out, len(telemetry.events), ", ".join(telemetry.tracks())))
    if jsonl_path is not None:
        telemetry.write_jsonl(jsonl_path)
        print("jsonl events: %s" % jsonl_path)
    if not quiet:
        print()
        print(telemetry.render_summary())
        from ..telemetry import render_flamegraph
        print()
        print(render_flamegraph(telemetry.events))
    return 0
