"""Traced scenarios for ``python -m repro trace <experiment>``.

Each scenario builds one quick, representative world of the named
experiment with an *enabled* telemetry hub, runs it, and hands the hub
back.  The CLI then writes a Chrome ``trace_event`` JSON (load it at
``ui.perfetto.dev`` or ``chrome://tracing``), optionally the raw JSONL
event stream, and prints an ASCII summary and flamegraph.

Scenarios are deliberately small — a trace of a few hundred operations
is readable; a trace of a full benchmark sweep is not.  To trace a full
benchmark run instead, use ``python -m repro <experiment> --telemetry``.
"""

from ..devices import make_durassd
from ..sim import units
from ..telemetry import Telemetry
from . import setups
from .figure5 import run_config


def _trace_table1(telemetry):
    """One Table 1 fio cell: DuraSSD, cache on, fsync every 8 writes."""
    from .table1 import measure_cell
    iops = measure_cell("durassd", "on", 8, ios=setups.ops_scale(200),
                        telemetry=telemetry)
    return "fio 4KB randwrite, durassd/on, fsync=8: %.0f IOPS" % iops


def _trace_figure5(telemetry):
    """One LinkBench run: MySQL defaults (ON/ON), 16KB pages."""
    result = run_config(True, True, 16 * units.KIB, clients=16,
                        ops_per_client=max(8, setups.ops_scale(12)),
                        telemetry=telemetry)
    return "LinkBench ON/ON 16KB, 16 clients: %.0f TPS" % result.tps


def _trace_table3(telemetry):
    """The latency-tail configuration of Table 3 (ON/ON, 16KB)."""
    result = run_config(True, True, 16 * units.KIB, clients=16,
                        ops_per_client=max(8, setups.ops_scale(12)),
                        telemetry=telemetry)
    return ("LinkBench ON/ON 16KB: write mean %.1f ms, p99 %.1f ms"
            % (result.writes.mean * 1e3,
               result.writes.percentile(0.99) * 1e3))


def _trace_bursts(telemetry):
    """Write burst absorbed by DuraSSD with barriers off."""
    from .bursts import run_one
    outcome = run_one(make_durassd, False, 8,
                      burst_writes=setups.ops_scale(200),
                      telemetry=telemetry)
    return ("burst drained in %.3f s; read p99 %.2f ms"
            % (outcome["burst_seconds"], outcome["read_p99_ms"]))


SCENARIOS = {
    "table1": ("one fio cell (durassd, cache on, fsync=8)", _trace_table1),
    "figure5": ("one LinkBench run (ON/ON, 16KB pages)", _trace_figure5),
    "table3": ("the ON/ON latency-tail LinkBench run", _trace_table3),
    "bursts": ("a write burst on DuraSSD, barriers off", _trace_bursts),
}


def run_scenario(name, sample_interval=0.002):
    """Run a traced scenario; returns ``(telemetry, outcome_line)``."""
    if name not in SCENARIOS:
        raise KeyError("no traced scenario for %r (have: %s)"
                       % (name, ", ".join(sorted(SCENARIOS))))
    telemetry = Telemetry(enabled=True, sample_interval=sample_interval)
    outcome = SCENARIOS[name][1](telemetry)
    return telemetry, outcome


def main(argv):
    """``python -m repro trace <experiment> [--out X] [--jsonl Y]``."""
    args = list(argv)
    if not args or args[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("scenarios:")
        for name in sorted(SCENARIOS):
            print("  %-10s %s" % (name, SCENARIOS[name][0]))
        print("\noptions: --out PATH (default trace.json), --jsonl PATH,"
              "\n         --sample-interval SECONDS, --quiet")
        return 0
    name = args.pop(0)
    out, jsonl_path, quiet = "trace.json", None, False
    sample_interval = 0.002
    while args:
        flag = args.pop(0)
        if flag in ("--out", "--jsonl", "--sample-interval") and not args:
            print("%s requires a value" % flag)
            return 2
        if flag == "--out":
            out = args.pop(0)
        elif flag == "--jsonl":
            jsonl_path = args.pop(0)
        elif flag == "--sample-interval":
            try:
                sample_interval = float(args.pop(0))
            except ValueError:
                print("--sample-interval wants seconds, e.g. 0.002")
                return 2
            if sample_interval <= 0:
                print("--sample-interval must be positive")
                return 2
        elif flag == "--quiet":
            quiet = True
        else:
            print("unknown option: %r" % flag)
            return 2
    try:
        telemetry, outcome = run_scenario(name,
                                          sample_interval=sample_interval)
    except KeyError as error:
        print(error.args[0])
        return 2
    telemetry.write_chrome_trace(out)
    print(outcome)
    print("chrome trace: %s (%d events, tracks: %s)"
          % (out, len(telemetry.events), ", ".join(telemetry.tracks())))
    if jsonl_path is not None:
        telemetry.write_jsonl(jsonl_path)
        print("jsonl events: %s" % jsonl_path)
    if not quiet:
        print()
        print(telemetry.render_summary())
        from ..telemetry import render_flamegraph
        print()
        print(render_flamegraph(telemetry.events))
    return 0
