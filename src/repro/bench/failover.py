"""Failover bench: rebuild-under-load MTTR vs the rebuild throttle.

Usage::

    python -m repro failover                   # full pace sweep
    python -m repro failover --smoke           # CI failover gate
    python -m repro failover --death early-death --ops 400
    python -m repro failover --pace 2e-4,5e-4,2e-3

Each cell kills mirror member 0 with a named death schedule
(:data:`DEATH_PROFILES`) while a seeded LinkBench stream is running,
then lets the hot-spare rebuild drain at one ``--pace`` setting (one
block per ``pace`` simulated seconds).  The verdict per cell:

* **MTTR** — the degraded window, death to fully-healthy mirror;
* **p99** — foreground command latency while the rebuild competes with
  the stream (the cost of a more aggressive throttle);
* **safety** — zero acked blocks lost while a survivor was present,
  and the spare's copy complete.

A fault-free control pins the baseline p99.  The second-failure cell
kills the survivor mid-rebuild: it must *report detected data loss* —
loudly, never a hang, never a silent PASS.
"""

import sys
import time

from ..failures import chaos as harness
from ..telemetry.histogram import DEFAULT_LOG_EDGES, percentile_from_counts
from ..telemetry.hub import Telemetry
from ..telemetry.metrics import MetricsRegistry
from ..telemetry import series
from . import setups
from .scenarios import DEATH_PROFILES

#: rebuild throttle settings swept by the full bench (seconds per block)
PACES = (2e-4, 5e-4, 2e-3)

#: long enough that the kill lands mid-stream with writes on both sides
BASE_OPS = 200


def run_cell(seed, ops, death=None, pace=None, spares=1, engine="innodb",
             device="durassd", death_target="data:0"):
    """One failover cell; returns ``(result, foreground_p99_s)``."""
    scenario = harness.chaos_scenario(
        engine=engine, device=device, profile="none", seed=seed, ops=ops,
        mirror=2, checksums=True, death=death, death_target=death_target,
        spares=spares, rebuild_pace=pace)
    telemetry = Telemetry(enabled=False, metrics=MetricsRegistry(
        interval=harness.CHAOS_METRICS_INTERVAL))
    result = harness.run_chaos(scenario, telemetry=telemetry)
    return result, _cmd_p99(telemetry.metrics)


def _cmd_p99(registry):
    """Whole-run p99 of ``host.cmd_latency`` across every device."""
    kind, cumulatives = series.aggregate_window_values(
        registry, "host.cmd_latency", None)
    if kind != "histogram":
        return None
    last = None
    for value in cumulatives:
        if value is not None:
            last = value
    if not last or not last["count"]:
        return None
    return percentile_from_counts(last["counts"], DEFAULT_LOG_EDGES,
                                  0.99, upper=last["max"])


def _print_cell(label, result, p99, elapsed, expect_rebuild, expect_loss):
    info = result.failover or {}
    ok = result.completed and not result.failed
    if expect_loss:
        # the second-failure cell passes only by *reporting* the loss
        ok = ok and any(
            violation.startswith("death:data-loss-detected")
            for violation in result.violations)
    else:
        ok = ok and result.clean and not info.get("data_loss_blocks")
    if expect_rebuild and not info.get("rebuilds_completed"):
        ok = False
    mttr = ("%.0fms" % (info["rebuild_mttr_s"] * 1e3)
            if info.get("rebuild_mttr_s") is not None else "-")
    detect = ("%.1fms" % (result.detection_latency_s * 1e3)
              if result.detection_latency_s is not None else "-")
    p99_text = "%.2fms" % (p99 * 1e3) if p99 is not None else "-"
    print("%-34s %-5s mttr=%-7s det=%-7s p99=%-8s copied=%-4d "
          "lost=%-3d %4.1fs"
          % (label, "PASS" if ok else "FAIL", mttr, detect, p99_text,
             info.get("blocks_copied", 0), info.get("data_loss_blocks", 0),
             elapsed))
    for violation in result.violations:
        print("    violation: %s" % violation)
    return ok


def _run_suite(paces, seed, ops, death):
    """Control, the pace sweep, then the second-failure cell."""
    exit_code = 0
    begin = time.time()
    result, p99 = run_cell(seed, ops, death=None, spares=0)
    if not _print_cell("control / no-death", result, p99,
                       time.time() - begin, expect_rebuild=False,
                       expect_loss=False):
        exit_code = 1
    for pace in paces:
        begin = time.time()
        result, p99 = run_cell(seed, ops, death=death, pace=pace)
        if not _print_cell("%s / pace=%g" % (death, pace), result, p99,
                           time.time() - begin, expect_rebuild=True,
                           expect_loss=False):
            exit_code = 1
    # Second failure mid-rebuild: slow the copy so the one-copy window
    # is still open when the survivor dies.
    begin = time.time()
    result, p99 = run_cell(seed, ops, death="double-death",
                           death_target="data", pace=5e-3)
    if not _print_cell("double-death / pace=0.005", result, p99,
                       time.time() - begin, expect_rebuild=False,
                       expect_loss=True):
        exit_code = 1
    return exit_code


def sweep(seed=11, ops=None, death="mid-death", paces=PACES):
    ops = ops if ops is not None else max(setups.ops_scale(BASE_OPS),
                                          BASE_OPS)
    print("failover sweep: %d ops per cell, seed %d, death=%s"
          % (ops, seed, death))
    exit_code = _run_suite(tuple(paces), seed, ops, death)
    print("failover sweep: %s" % ("ok" if exit_code == 0 else "FAILED"))
    return exit_code


def smoke(seed=11, ops=None):
    """The CI failover gate: control, one rebuild, one double death."""
    ops = ops if ops is not None else max(setups.ops_scale(BASE_OPS),
                                          BASE_OPS // 2)
    print("failover smoke: %d ops per cell, seed %d" % (ops, seed))
    exit_code = _run_suite((5e-4,), seed, ops, "mid-death")
    print("failover smoke: %s" % ("ok" if exit_code == 0 else "FAILED"))
    return exit_code


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("death profiles:")
        for line in DEATH_PROFILES.listing():
            print(line)
        return 0

    def take_option(name, default=None):
        if name in argv:
            index = argv.index(name)
            value = argv[index + 1]
            del argv[index:index + 2]
            return value
        return default

    smoke_mode = "--smoke" in argv
    if smoke_mode:
        argv.remove("--smoke")
    ops = take_option("--ops")
    seed = int(take_option("--seed", "11"))
    death = take_option("--death", "mid-death")
    paces = take_option("--pace")
    if death not in DEATH_PROFILES or death in ("none", "double-death"):
        usable = [name for name in DEATH_PROFILES.names()
                  if name not in ("none", "double-death")]
        print("no single-death profile %r (have: %s)"
              % (death, ", ".join(usable)))
        return 2
    if smoke_mode:
        return smoke(seed=seed, ops=int(ops) if ops else None)
    return sweep(seed=seed, ops=int(ops) if ops else None, death=death,
                 paces=(tuple(float(pace) for pace in paces.split(","))
                        if paces else PACES))


if __name__ == "__main__":
    raise SystemExit(main())
