"""Table 1 — effect of fsync and flush-cache on 4KB random-write IOPS.

Four devices (HDD, SSD-A, SSD-B, DuraSSD) x cache off/on (+ the
DuraSSD "nobarrier" row) x fsync period in {1..256, none}, measured
with the fio tool at queue depth 1, exactly as the paper does.
"""

from ..host import FileSystem, FioJob, run_fio
from ..sim import units
from . import setups
from .tableio import render_table

FSYNC_PERIODS = (1, 4, 8, 16, 32, 64, 128, 256, 0)

#: the paper's published IOPS, keyed by (device, mode) then period
PAPER = {
    ("hdd", "off"): (58, 111, 130, 143, 151, 155, 156, 157, 158),
    ("hdd", "on"): (59, 135, 184, 234, 251, 335, 375, 381, 387),
    ("ssd-a", "off"): (168, 332, 397, 441, 463, 479, 480, 490, 494),
    ("ssd-a", "on"): (256, 759, 1297, 2219, 3595, 5094, 6794, 8782, 11681),
    ("ssd-b", "off"): (603, 732, 889, 995, 1042, 1082, 1114, 1124, 1157),
    ("ssd-b", "on"): (655, 1762, 2319, 3152, 4046, 5177, 6318, 8575, 8456),
    ("durassd", "off"): (249, 330, 438, 467, 482, 490, 495, 497, 498),
    ("durassd", "on"): (225, 836, 1556, 2556, 5020, 6969, 10582, 12647,
                        15319),
    ("durassd", "nobarrier"): (14484, 14800, 14813, 14824, 14840, 14863,
                               15063, 15181, 15458),
}

ROWS = [
    ("hdd", "off"), ("hdd", "on"),
    ("ssd-a", "off"), ("ssd-a", "on"),
    ("ssd-b", "off"), ("ssd-b", "on"),
    ("durassd", "off"), ("durassd", "on"), ("durassd", "nobarrier"),
]


def measure_cell(device_kind, mode, fsync_period, ios=None, telemetry=None):
    """One fio run; returns IOPS."""
    sim = setups.fresh_world(telemetry)
    cache_enabled = mode != "off"
    device = setups.make_device(sim, device_kind,
                                cache_enabled=cache_enabled)
    barriers = mode != "nobarrier"
    filesystem = FileSystem(sim, device, barriers=barriers)
    if ios is None:
        ios = _ios_for(device_kind, mode, fsync_period)
    job = FioJob(rw="randwrite", block_size=4 * units.KIB,
                 ios_per_job=ios, fsync_every=fsync_period,
                 file_size=64 * units.MIB)
    return run_fio(sim, filesystem, job).iops


def _ios_for(device_kind, mode, fsync_period):
    """Enough I/Os for a stable estimate without hour-long HDD runs."""
    base = 200 if device_kind == "hdd" else 600
    if mode == "nobarrier" or fsync_period == 0:
        base *= 3
    if fsync_period >= 64:
        base = max(base, fsync_period * 5)
    return setups.ops_scale(base)


#: cell traced when the bench runs with ``--telemetry`` (one world per
#: hub; this is the configuration the paper's analysis centres on)
TRACED_CELL = ("durassd", "on", 8)


def run(telemetry=None):
    """Measure the full table; returns {(device, mode): [iops...]}.

    ``telemetry`` (optional, one enabled hub) is threaded into the
    :data:`TRACED_CELL` run; tracing adds no simulation events, so the
    traced cell's IOPS are unchanged.
    """
    results = {}
    for device_kind, mode in ROWS:
        results[(device_kind, mode)] = [
            measure_cell(device_kind, mode, period,
                         telemetry=telemetry if (device_kind, mode, period)
                         == TRACED_CELL else None)
            for period in FSYNC_PERIODS]
    return results


def format_table(results):
    headers = (["device/cache"]
               + [str(p) if p else "none" for p in FSYNC_PERIODS])
    rows = []
    for key in ROWS:
        rows.append(["%s %s" % key] + [round(v) for v in results[key]])
        rows.append(["  (paper)"] + list(PAPER[key]))
    return render_table(
        "Table 1: 4KB random-write IOPS vs writes-per-fsync", headers, rows)


def main(telemetry=None):
    print(format_table(run(telemetry)))


if __name__ == "__main__":
    main()
