"""Perf-regression gate: ``python -m repro regress``.

Re-runs the scaling benchmark's configurations and diffs the fresh
numbers against the committed ``BENCH_scaling.json`` baseline.  The
simulation is deterministic, so on an unchanged tree the fresh run
reproduces the baseline exactly; a model or stack change that moves
TPS down or p99 up beyond tolerance fails the gate (exit 1), which is
the CI hook that keeps the repo's perf trajectory honest.

Usage::

    python -m repro regress                   # full sweep vs baseline
    python -m repro regress --smoke           # CI: width-1 cells only
    python -m repro regress --tps-tol 0.05 --p99-tol 0.10
    python -m repro regress --baseline BENCH_scaling.json --json diff.json

Tolerances are relative: ``--tps-tol 0.05`` fails a >5% TPS drop.
Improvements never fail the gate (they are reported; refresh the
baseline deliberately via ``python -m repro scaling``).

When a committed ``BENCH_speed.json`` exists (``python -m repro
profile --speed``), the gate also prints an **advisory** wall-clock
section: the fresh run's real-time factor per matched cell against the
speed baseline.  Wall time is host-dependent — a slower machine is not
a regression — so this section never fails the gate; it exists so a
perf-motivated change can show its wall-clock win in the same output
that proves the simulated metrics did not move.
"""

import json
import sys

from . import scaling, setups

BASELINE_PATH = "BENCH_scaling.json"

SPEED_PATH = "BENCH_speed.json"

#: the sweep's operation count when the baseline was recorded (the JSON
#: predates this gate and does not carry it)
DEFAULT_OPS = scaling.BASE_OPS_PER_CLIENT

TPS_TOLERANCE = 0.02
P99_TOLERANCE = 0.05
SMOKE_TOLERANCE = 0.25


SECTIONS = ("throughput", "log_placement", "mirroring", "interfaces")


def _key(record):
    if "interface" in record:
        return ("interfaces", record["interface"], record["sq"])
    if "mirror" in record:
        return ("mirroring", record["mode"], record["mirror"])
    if "mode" in record:
        return ("throughput", record["mode"], record["width"])
    return ("log_placement", record["config"], record["width"])


def compare(baseline, fresh, tps_tol=TPS_TOLERANCE, p99_tol=P99_TOLERANCE):
    """Diff two scaling reports; returns ``(rows, failures)``.

    Each row is one metric of one matched configuration.  A failure is
    a TPS drop or a p99 rise beyond its relative tolerance; baseline
    cells the fresh run did not cover (``--smoke``) are skipped.
    """
    fresh_by_key = {_key(r): r for section in SECTIONS
                    for r in fresh.get(section, ())}
    rows, failures = [], []
    for section in SECTIONS:
        for base_rec in baseline.get(section, ()):
            key = _key(base_rec)
            fresh_rec = fresh_by_key.get(key)
            if fresh_rec is None:
                continue
            for metric, tolerance, bad_sign in (("tps", tps_tol, -1),
                                                ("p99_write_s", p99_tol,
                                                 +1)):
                base_val = base_rec[metric]
                new_val = fresh_rec[metric]
                delta = ((new_val - base_val) / base_val if base_val
                         else 0.0)
                failed = delta * bad_sign > tolerance
                rows.append({"key": "/".join(str(part) for part in key),
                             "metric": metric, "baseline": base_val,
                             "fresh": new_val, "delta": delta,
                             "tolerance": tolerance, "failed": failed})
                if failed:
                    failures.append(rows[-1])
    return rows, failures


def run_fresh(baseline, smoke=False):
    """Re-run the configurations the baseline records.

    Operation counts are pinned to the baseline's (never quick-scaled):
    TPS and p99 are only comparable at identical work.
    """
    if setups.scale_factor() != baseline.get("scale_factor"):
        raise RuntimeError(
            "REPRO_SCALE=%d does not match baseline scale_factor=%s; "
            "the gate would diff incomparable worlds"
            % (setups.scale_factor(), baseline.get("scale_factor")))
    ops = baseline.get("ops_per_client", DEFAULT_OPS)
    widths = sorted({r["width"] for r in baseline.get("throughput", ())})
    if smoke:
        widths = widths[:1]
    throughput = []
    for label, barriers in scaling.MODES:
        for width in widths:
            record = scaling.run_width(width, barriers,
                                       ops_per_client=ops)
            throughput.append(record)
            print("  ran %-13s width=%d  %8.0f tps  p99=%.2fms"
                  % (label, width, record["tps"],
                     record["p99_write_s"] * 1e3))
    placement = []
    mirroring = []
    if not smoke:
        for base_rec in baseline.get("log_placement", ()):
            record = scaling.run_placement(
                base_rec["config"] == "colocated",
                width=base_rec["width"], ops_per_client=ops)
            placement.append(record)
            print("  ran log %-10s width=%d  %8.0f tps  p99=%.2fms"
                  % (record["config"], record["width"], record["tps"],
                     record["p99_write_s"] * 1e3))
        for base_rec in baseline.get("mirroring", ()):
            record = scaling.run_mirror(
                base_rec["mirror"],
                barriers=base_rec["mode"] == "flush-cache",
                ops_per_client=ops)
            mirroring.append(record)
            print("  ran mirror=%d      %8.0f tps  p99=%.2fms"
                  % (record["mirror"], record["tps"],
                     record["p99_write_s"] * 1e3))
    interfaces = []
    if not smoke:
        for base_rec in baseline.get("interfaces", ()):
            record = scaling.run_interface(
                base_rec["interface"], base_rec["sq"],
                barriers=base_rec["mode"] == "flush-cache",
                ops_per_client=ops)
            interfaces.append(record)
            print("  ran %-5s sq=%d     %8.0f tps  p99=%.2fms"
                  % (record["interface"], record["sq"], record["tps"],
                     record["p99_write_s"] * 1e3))
    return {"throughput": throughput, "log_placement": placement,
            "mirroring": mirroring, "interfaces": interfaces}


def wall_clock_advisory(fresh, speed_path=SPEED_PATH):
    """Advisory real-time-factor lines vs the committed speed baseline.

    Matches the fresh throughput records to ``BENCH_speed.json`` cells
    by (mode, width) and compares real-time factors (``sim_seconds /
    wall_seconds``).  Returns printable lines — or an explanatory
    one-liner when there is no baseline.  Never fails the gate: wall
    time depends on the host, and the regress run itself carries
    measurement noise a deterministic simulation does not.
    """
    try:
        with open(speed_path) as handle:
            speed = json.load(handle)
    except OSError:
        return ["  (no %s — run `python -m repro profile --speed` to "
                "record one)" % speed_path]
    by_cell = {(cell["mode"], cell["width"]): cell
               for cell in speed.get("cells", ())}
    lines = []
    for record in fresh.get("throughput", ()):
        cell = by_cell.get((record["mode"], record["width"]))
        if cell is None or not record.get("wall_seconds"):
            continue
        fresh_rtf = record["sim_seconds"] / record["wall_seconds"]
        base_rtf = cell["real_time_factor"]
        delta = ((fresh_rtf - base_rtf) / base_rtf * 100
                 if base_rtf else 0.0)
        lines.append("  %-13s width=%d  rtf %5.2fx vs baseline %5.2fx "
                     "(%+.0f%%)"
                     % (record["mode"], record["width"], fresh_rtf,
                        base_rtf, delta))
    if not lines:
        return ["  (no fresh cells match %s)" % speed_path]
    return lines


def format_rows(rows):
    lines = ["%-32s %-12s %12s %12s %8s" % ("configuration", "metric",
                                            "baseline", "fresh",
                                            "delta")]
    for row in rows:
        lines.append("%-32s %-12s %12.4f %12.4f %+7.2f%%%s"
                     % (row["key"], row["metric"], row["baseline"],
                        row["fresh"], row["delta"] * 100,
                        "  FAIL" if row["failed"] else ""))
    return "\n".join(lines)


def main(argv):
    args = list(argv)
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    baseline_path, json_path = BASELINE_PATH, None
    smoke = False
    tps_tol, p99_tol = TPS_TOLERANCE, P99_TOLERANCE
    while args:
        flag = args.pop(0)
        if flag in ("--baseline", "--json", "--tps-tol",
                    "--p99-tol") and not args:
            print("%s requires a value" % flag)
            return 2
        if flag == "--baseline":
            baseline_path = args.pop(0)
        elif flag == "--json":
            json_path = args.pop(0)
        elif flag == "--smoke":
            smoke = True
            tps_tol = p99_tol = SMOKE_TOLERANCE
        elif flag == "--tps-tol":
            tps_tol = float(args.pop(0))
        elif flag == "--p99-tol":
            p99_tol = float(args.pop(0))
        else:
            print("unknown option: %r" % flag)
            return 2
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except OSError as error:
        print("cannot read baseline %s: %s" % (baseline_path, error))
        return 2
    try:
        fresh = run_fresh(baseline, smoke=smoke)
    except RuntimeError as error:
        print(str(error))
        return 2
    rows, failures = compare(baseline, fresh, tps_tol=tps_tol,
                             p99_tol=p99_tol)
    print()
    print(format_rows(rows))
    print("\nwall clock (advisory — never fails the gate):")
    for line in wall_clock_advisory(fresh):
        print(line)
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump({"baseline": baseline_path, "rows": rows,
                       "fresh": fresh}, handle, indent=2, sort_keys=True)
        print("wrote %s" % json_path)
    if failures:
        print("\nREGRESSION: %d metric(s) beyond tolerance "
              "(tps %.0f%%, p99 %.0f%%)"
              % (len(failures), tps_tol * 100, p99_tol * 100))
        return 1
    print("\nno regression: %d metrics within tolerance "
          "(tps %.0f%%, p99 %.0f%%)"
          % (len(rows), tps_tol * 100, p99_tol * 100))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
