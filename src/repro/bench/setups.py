"""Shared experiment plumbing: devices, file systems, engines, scaling.

Every bench builds its world through these helpers so the scale-down
policy lives in one place.  Environment knobs:

* ``REPRO_SCALE``   — divide the paper's 100GB databases by this factor
  (default 256; smaller = closer to the paper, slower).
* ``REPRO_QUICK``   — set to 1 to cut operation counts ~4x for smoke
  runs of the full benchmark suite.
"""

import os

from ..db.commercial import CommercialConfig, CommercialEngine
from ..db.couchstore import CouchstoreConfig, CouchstoreEngine
from ..db.innodb import InnoDBConfig, InnoDBEngine
from ..devices import make_durassd, make_hdd, make_ssd_a, make_ssd_b
from ..host import FileSystem
from ..sim import Simulator, units

PAPER_DB_BYTES = 100 * units.GIB

DEVICE_MAKERS = {
    "hdd": make_hdd,
    "ssd-a": make_ssd_a,
    "ssd-b": make_ssd_b,
    "durassd": make_durassd,
}


def scale_factor():
    return int(os.environ.get("REPRO_SCALE", "256"))


def quick_mode():
    return os.environ.get("REPRO_QUICK", "0") not in ("0", "", "false")


def ops_scale(base):
    """Operation count, shrunk in quick mode."""
    return max(10, base // 4) if quick_mode() else base


def scaled_db_bytes():
    return PAPER_DB_BYTES // scale_factor()


def scaled(buffer_gb):
    """A paper buffer-pool size (GB) scaled to the local run."""
    return int(buffer_gb * units.GIB) // scale_factor()


def fresh_world(telemetry=None):
    return Simulator(telemetry)


def make_device(sim, kind="durassd", cache_enabled=True, capacity_bytes=None):
    maker = DEVICE_MAKERS[kind]
    if capacity_bytes is None:
        return maker(sim, cache_enabled=cache_enabled)
    return maker(sim, cache_enabled=cache_enabled,
                 capacity_bytes=capacity_bytes)


def mysql_setup(sim, page_size, barriers, doublewrite, buffer_gb=10,
                device_kind="durassd", **config_overrides):
    """The paper's MySQL world: two drives, XFS, O_DIRECT."""
    db_bytes = scaled_db_bytes()
    data_device = make_device(sim, device_kind,
                              capacity_bytes=int(db_bytes * 2.5))
    log_device = make_device(sim, device_kind,
                             capacity_bytes=max(units.GIB, db_bytes // 4))
    data_fs = FileSystem(sim, data_device, barriers=barriers)
    log_fs = FileSystem(sim, log_device, barriers=barriers)
    config = InnoDBConfig(page_size=page_size,
                          buffer_pool_bytes=scaled(buffer_gb),
                          doublewrite=doublewrite, **config_overrides)
    engine = InnoDBEngine(sim, data_fs, log_fs, config)
    return engine, (data_device, log_device)


def commercial_setup(sim, page_size, barriers, buffer_gb=2,
                     device_kind="durassd", **config_overrides):
    """The paper's commercial-DBMS world: ext4, O_DSYNC data files."""
    db_bytes = scaled_db_bytes()
    data_device = make_device(sim, device_kind,
                              capacity_bytes=int(db_bytes * 2.5))
    log_device = make_device(sim, device_kind,
                             capacity_bytes=max(units.GIB, db_bytes // 4))
    data_fs = FileSystem(sim, data_device, barriers=barriers,
                         coalesce_barriers=True)
    log_fs = FileSystem(sim, log_device, barriers=barriers,
                        coalesce_barriers=True)
    config = CommercialConfig(page_size=page_size,
                              buffer_pool_bytes=scaled(buffer_gb),
                              **config_overrides)
    engine = CommercialEngine(sim, data_fs, log_fs, config)
    return engine, (data_device, log_device)


def couchbase_setup(sim, batch_size, barriers, device_kind="durassd",
                    **config_overrides):
    """The paper's Couchbase world: one drive, XFS."""
    device = make_device(sim, device_kind, capacity_bytes=2 * units.GIB)
    filesystem = FileSystem(sim, device, barriers=barriers)
    config = CouchstoreConfig(batch_size=batch_size, **config_overrides)
    engine = CouchstoreEngine(sim, filesystem, config)
    return engine, (device,)
