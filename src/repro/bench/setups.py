"""Shared experiment plumbing: devices, file systems, engines, scaling.

Every bench builds its world through these helpers so the scale-down
policy lives in one place.  Environment knobs:

* ``REPRO_SCALE``   — divide the paper's 100GB databases by this factor
  (default 256; smaller = closer to the paper, slower).
* ``REPRO_QUICK``   — set to 1 to cut operation counts ~4x for smoke
  runs of the full benchmark suite.
* ``set_gray_faults`` (the ``--gray-faults <profile>`` CLI flag) — every
  device built afterwards carries the named gray-fault profile and every
  file system arms the command-lifecycle timeout stack, so any bench
  table can be rerun against a stalling or hanging device.
* ``set_topology`` (the ``--devices N`` / ``--mirror N`` /
  ``--log-device`` CLI flags) — data targets built afterwards stripe
  over N member devices or mirror across N checksum-verified replicas,
  and the single-drive Couchbase world moves its append log onto a
  dedicated device via a placement volume.  The same knob selects the
  host interface (``--interface sata|nvme`` / ``--sq N`` /
  ``--queue-depth N``): every queue the world builds afterwards comes
  from one :class:`repro.host.QueueTopology`, either the calibrated
  single-queue SATA NCQ or an NVMe-style multi-queue model.
"""

import os

from ..db.commercial import CommercialConfig, CommercialEngine
from ..db.couchstore import CouchstoreConfig, CouchstoreEngine
from ..db.innodb import InnoDBConfig, InnoDBEngine
from ..devices import make_durassd, make_hdd, make_ssd_a, make_ssd_b
from ..failures.grayfaults import GrayFaultModel, make_profile
from ..host import (
    FileSystem,
    MirroredVolume,
    PlacementVolume,
    SingleDevice,
    StripedVolume,
)
from ..host.lifecycle import TimeoutPolicy
from ..host.queues import INTERFACES, QueueTopology
from ..sim import Simulator, units
from ..telemetry import MetricsRegistry, Telemetry

PAPER_DB_BYTES = 100 * units.GIB

DEVICE_MAKERS = {
    "hdd": make_hdd,
    "ssd-a": make_ssd_a,
    "ssd-b": make_ssd_b,
    "durassd": make_durassd,
}


#: (profile, seed) armed by --gray-faults, or None for healthy devices
_GRAY_FAULTS = None

#: counter salting successive devices so they stall at different instants
_GRAY_DEVICE_COUNT = 0


def set_gray_faults(profile, seed=0):
    """Arm gray-fault injection for every subsequently built world.

    ``profile`` is a name from :data:`repro.failures.grayfaults.PROFILES`
    or ``None``/"none" to disarm.  With faults armed, file systems get a
    timeout policy so benches degrade instead of deadlocking.
    """
    global _GRAY_FAULTS, _GRAY_DEVICE_COUNT
    _GRAY_DEVICE_COUNT = 0
    if profile is None or profile == "none":
        _GRAY_FAULTS = None
        return
    make_profile(profile, seed)  # validate the name early
    _GRAY_FAULTS = (profile, seed)


def gray_timeout_policy():
    """The lifecycle policy benches run with under --gray-faults."""
    if _GRAY_FAULTS is None:
        return None
    _profile, seed = _GRAY_FAULTS
    return TimeoutPolicy(deadline=0.01, backoff_base=1e-3, seed=seed)


#: data-target stripe width, mirroring, dedicated-log placement, and the
#: host interface every queue is built through
_TOPOLOGY = {"data_devices": 1, "dedicated_log": False, "mirror": 1,
             "interface": "sata", "submission_queues": 2,
             "queue_depth": None}


def set_topology(data_devices=1, dedicated_log=False, mirror=1,
                 interface="sata", submission_queues=None,
                 queue_depth=None):
    """Shape every subsequently built world's block topology.

    ``data_devices`` > 1 stripes the data target over that many member
    devices (RAID-0, per-member queues).  ``mirror`` > 1 replicates it
    instead (RAID-1 with block checksums and read-repair) — mutually
    exclusive with striping.  ``dedicated_log`` moves the log of the
    single-drive Couchbase world onto its own device via a placement
    volume (the MySQL/commercial worlds already dedicate a log drive).

    ``interface`` selects the host queue model: ``"sata"`` (the
    calibrated single 32-slot NCQ) or ``"nvme"`` (``submission_queues``
    SQ/CQ pairs with the log stream pinned to the last queue).
    ``queue_depth`` overrides the per-queue slot count.  Width 1,
    mirror 1, no dedicated log, SATA at the default depth is the
    calibrated byte-identical path.
    """
    global _TOPOLOGY
    data_devices = int(data_devices)
    if data_devices < 1:
        raise ValueError("data_devices must be >= 1")
    mirror = int(mirror)
    if mirror < 1:
        raise ValueError("mirror must be >= 1")
    if mirror > 1 and data_devices > 1:
        raise ValueError("mirror and striping are mutually exclusive")
    if interface not in INTERFACES:
        raise ValueError("interface must be one of %s" % (INTERFACES,))
    if submission_queues is None:
        submission_queues = 2
    submission_queues = int(submission_queues)
    if submission_queues < 1:
        raise ValueError("submission_queues must be >= 1")
    if queue_depth is not None:
        queue_depth = int(queue_depth)
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
    _TOPOLOGY = {"data_devices": data_devices,
                 "dedicated_log": bool(dedicated_log),
                 "mirror": mirror,
                 "interface": interface,
                 "submission_queues": submission_queues,
                 "queue_depth": queue_depth}


def topology():
    return dict(_TOPOLOGY)


def queue_topology():
    """The armed :class:`QueueTopology`, or ``None`` on the default.

    Returning ``None`` for plain SATA at the default depth matters: the
    construction sites then take the exact legacy code path, keeping the
    calibrated benchmarks byte-identical.  Under NVMe with more than one
    submission queue the ``log`` stream (WAL/journal writes) pins to the
    last queue so redo flushes never sit behind data-page traffic.
    """
    interface = _TOPOLOGY["interface"]
    depth = _TOPOLOGY["queue_depth"]
    if interface == "sata":
        if depth is None:
            return None
        return QueueTopology(interface="sata", queue_depth=depth)
    queues = _TOPOLOGY["submission_queues"]
    affinity = {"log": queues - 1} if queues > 1 else None
    return QueueTopology(interface="nvme", queue_depth=depth,
                         submission_queues=queues, affinity=affinity)


def make_data_target(sim, device_kind, capacity_bytes, width=None,
                     mirror=None, timeout_policy=None, queue_model=None):
    """``(target_or_device, member_devices)`` for the data extent.

    Width 1 returns the raw device — :class:`FileSystem` wraps it in a
    :class:`SingleDevice`, keeping the calibrated path byte-identical.
    Striped members named ``<kind>.d<i>`` each carry ``capacity /
    width`` (rounded up) behind their own queue + lifecycle; mirror
    replicas named ``<kind>.m<i>`` each carry the full capacity behind
    a checksum-verified :class:`MirroredVolume`.
    """
    width = _TOPOLOGY["data_devices"] if width is None else width
    mirror = _TOPOLOGY["mirror"] if mirror is None else mirror
    if queue_model is None:
        queue_model = queue_topology()
    if mirror > 1:
        members = tuple(
            make_device(sim, device_kind, capacity_bytes=capacity_bytes,
                        name="%s.m%d" % (device_kind, index))
            for index in range(mirror))
        volume = MirroredVolume(sim, members, timeout_policy=timeout_policy,
                                queue_model=queue_model)
        return volume, members
    if width <= 1:
        device = make_device(sim, device_kind, capacity_bytes=capacity_bytes)
        return device, (device,)
    member_bytes = -(-int(capacity_bytes) // width)
    members = tuple(
        make_device(sim, device_kind, capacity_bytes=member_bytes,
                    name="%s.d%d" % (device_kind, index))
        for index in range(width))
    volume = StripedVolume(sim, members, timeout_policy=timeout_policy,
                           queue_model=queue_model)
    return volume, members


def scale_factor():
    return int(os.environ.get("REPRO_SCALE", "256"))


def quick_mode():
    return os.environ.get("REPRO_QUICK", "0") not in ("0", "", "false")


def ops_scale(base):
    """Operation count, shrunk in quick mode."""
    return max(10, base // 4) if quick_mode() else base


def scaled_db_bytes():
    return PAPER_DB_BYTES // scale_factor()


def scaled(buffer_gb):
    """A paper buffer-pool size (GB) scaled to the local run."""
    return int(buffer_gb * units.GIB) // scale_factor()


#: metrics window interval armed by --metrics-interval, or None (off)
_METRICS_INTERVAL = None

#: simulators built with an armed registry, for post-run series export
_METRIC_SIMS = []


def set_metrics_interval(interval):
    """Arm continuous windowed metrics for subsequently built worlds.

    Each :func:`fresh_world` call that does not bring its own telemetry
    hub gets one whose metrics registry samples every ``interval``
    simulated seconds; the simulators are remembered (:func:`metric_sims`)
    so the CLI can export their series after the bench finishes.
    ``None`` disarms — the byte-identical default path, where worlds get
    a disabled hub and every instrument is a shared no-op.
    """
    global _METRICS_INTERVAL
    if interval is not None and interval <= 0:
        raise ValueError("metrics interval must be positive")
    _METRICS_INTERVAL = interval
    del _METRIC_SIMS[:]


def metrics_interval():
    return _METRICS_INTERVAL


def metric_sims():
    """Simulators built since arming, each carrying a live registry."""
    return list(_METRIC_SIMS)


#: self-profiling armed by --profile: every fresh world gets a profiler
_PROFILE = False

#: profilers attached since arming, in world-build order
_PROFILERS = []


def set_profile(enabled=True):
    """Arm simulator self-profiling for subsequently built worlds.

    Each :func:`fresh_world` gets a
    :class:`~repro.sim.profiler.SimProfiler` attached (collected via
    :func:`profilers` for post-run reporting).  Disarmed — the default —
    worlds run the untouched class-method event loop: the profiler
    attaches by instance-level override, so the off path costs nothing.
    """
    global _PROFILE
    _PROFILE = bool(enabled)
    del _PROFILERS[:]


def profile_enabled():
    return _PROFILE


def profilers():
    """Profilers attached since arming, in world-build order."""
    return list(_PROFILERS)


def fresh_world(telemetry=None):
    """A simulator for one bench world.

    With ``--metrics-interval`` armed and no explicit hub, the world
    gets a trace-disabled hub with an enabled metrics registry — spans
    stay off (their overhead would distort latency-sensitive benches
    far more than windowed counter snapshots do).  With ``--profile``
    armed, a :class:`~repro.sim.profiler.SimProfiler` rides whatever
    hub the world ends up with.
    """
    metric_sim = False
    if telemetry is None and _METRICS_INTERVAL is not None:
        telemetry = Telemetry(
            enabled=False,
            metrics=MetricsRegistry(interval=_METRICS_INTERVAL))
        metric_sim = True
    if _PROFILE:
        if telemetry is None:
            telemetry = Telemetry(enabled=False)
        if telemetry.profiler is None:
            from ..sim.profiler import SimProfiler
            profiler = SimProfiler()
            telemetry.profiler = profiler
            _PROFILERS.append(profiler)
    sim = Simulator(telemetry)
    if metric_sim:
        _METRIC_SIMS.append(sim)
    return sim


def make_device(sim, kind="durassd", cache_enabled=True, capacity_bytes=None,
                name=None):
    global _GRAY_DEVICE_COUNT
    maker = DEVICE_MAKERS[kind]
    if capacity_bytes is None:
        device = maker(sim, cache_enabled=cache_enabled, name=name)
    else:
        device = maker(sim, cache_enabled=cache_enabled,
                       capacity_bytes=capacity_bytes, name=name)
    if _GRAY_FAULTS is not None:
        profile, seed = _GRAY_FAULTS
        salt = "%s-%d" % (kind, _GRAY_DEVICE_COUNT)
        _GRAY_DEVICE_COUNT += 1
        device.inject_gray_faults(
            GrayFaultModel(make_profile(profile, seed), salt=salt))
    return device


def mysql_setup(sim, page_size, barriers, doublewrite, buffer_gb=10,
                device_kind="durassd", **config_overrides):
    """The paper's MySQL world: two drives, XFS, O_DIRECT."""
    db_bytes = scaled_db_bytes()
    policy = gray_timeout_policy()
    data_target, data_devices = make_data_target(
        sim, device_kind, int(db_bytes * 2.5), timeout_policy=policy)
    # The log drive gets a distinct name: probes identify instances by
    # their device attr, so two same-kind drives must not collide.
    log_device = make_device(sim, device_kind,
                             capacity_bytes=max(units.GIB, db_bytes // 4),
                             name="%s.log" % device_kind)
    model = queue_topology()
    data_fs = FileSystem(sim, data_target, barriers=barriers,
                         timeout_policy=policy, queue_model=model)
    log_fs = FileSystem(sim, log_device, barriers=barriers,
                        timeout_policy=policy, queue_model=model)
    config = InnoDBConfig(page_size=page_size,
                          buffer_pool_bytes=scaled(buffer_gb),
                          doublewrite=doublewrite, **config_overrides)
    engine = InnoDBEngine(sim, data_fs, log_fs, config)
    return engine, data_devices + (log_device,)


def commercial_setup(sim, page_size, barriers, buffer_gb=2,
                     device_kind="durassd", **config_overrides):
    """The paper's commercial-DBMS world: ext4, O_DSYNC data files."""
    db_bytes = scaled_db_bytes()
    policy = gray_timeout_policy()
    data_target, data_devices = make_data_target(
        sim, device_kind, int(db_bytes * 2.5), timeout_policy=policy)
    log_device = make_device(sim, device_kind,
                             capacity_bytes=max(units.GIB, db_bytes // 4),
                             name="%s.log" % device_kind)
    model = queue_topology()
    data_fs = FileSystem(sim, data_target, barriers=barriers,
                         coalesce_barriers=True, timeout_policy=policy,
                         queue_model=model)
    log_fs = FileSystem(sim, log_device, barriers=barriers,
                        coalesce_barriers=True, timeout_policy=policy,
                        queue_model=model)
    config = CommercialConfig(page_size=page_size,
                              buffer_pool_bytes=scaled(buffer_gb),
                              **config_overrides)
    engine = CommercialEngine(sim, data_fs, log_fs, config)
    return engine, data_devices + (log_device,)


def couchbase_setup(sim, batch_size, barriers, device_kind="durassd",
                    **config_overrides):
    """The paper's Couchbase world: one drive, XFS.

    Under ``set_topology``, the data extent stripes and/or the append
    log moves onto a dedicated device behind a placement volume; the
    default topology is the paper's single drive.
    """
    policy = gray_timeout_policy()
    model = queue_topology()
    data_target, devices = make_data_target(sim, device_kind,
                                            2 * units.GIB,
                                            timeout_policy=policy)
    if _TOPOLOGY["dedicated_log"]:
        if not hasattr(data_target, "flush"):  # raw device at width 1
            data_target = SingleDevice(sim, data_target,
                                       timeout_policy=policy,
                                       queue_model=model)
        log_device = make_device(sim, device_kind,
                                 capacity_bytes=units.GIB,
                                 name="%s.log" % device_kind)
        devices = devices + (log_device,)
        data_target = PlacementVolume({
            "data": data_target,
            "log": SingleDevice(sim, log_device, timeout_policy=policy,
                                queue_model=model),
        })
    filesystem = FileSystem(sim, data_target, barriers=barriers,
                            timeout_policy=policy, queue_model=model)
    config = CouchstoreConfig(batch_size=batch_size, **config_overrides)
    engine = CouchstoreEngine(sim, filesystem, config)
    return engine, devices
