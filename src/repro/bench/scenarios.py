"""Shared scenario resolution for the trace/explain/chaos/monitor CLIs.

Each CLI used to keep its own ``dict`` of scenario names with its own
lookup, error message and help listing.  A :class:`ScenarioSet` is that
registry once: uniform ``KeyError`` text (with the available names),
uniform help listing, and dict-compatible access (``in``, ``[...]``,
iteration) so existing call sites keep working.

Two sets live here because several CLIs share them:

* :data:`TRACED` — the small traced benchmark worlds (``repro trace``
  and ``repro monitor`` run these);
* :data:`GRAY_PROFILES` — the named gray-fault profiles (``repro
  chaos``, ``--gray-faults`` on benches, ``repro monitor``);
* :data:`CORRUPTION_PROFILES` — the named silent-corruption profiles
  (``repro chaos --corruption``, ``repro integrity``);
* :data:`DEATH_PROFILES` — the named whole-device fail-stop schedules
  (``repro chaos --death``, ``repro failover``).

The explain CLI registers its own set (:mod:`repro.bench.explain`).
"""

from ..devices import make_durassd
from ..failures.corruption import (
    CORRUPTION_PROFILES as _CORRUPTION_MAKERS,
    make_corruption_profile,
)
from ..failures.death import (
    DEATH_PROFILES as _DEATH_MAKERS,
    make_death_schedule,
)
from ..failures.grayfaults import PROFILES
from ..sim import units
from . import setups


class ScenarioSet:
    """A named registry of scenarios: ``name -> (description, fn)``."""

    def __init__(self, kind):
        self.kind = kind
        self._scenarios = {}

    def register(self, name, description, fn):
        if name in self._scenarios:
            raise ValueError("duplicate %s scenario: %r" % (self.kind, name))
        self._scenarios[name] = (description, fn)
        return fn

    def names(self):
        return sorted(self._scenarios)

    def describe(self, name):
        return self._scenarios[name][0]

    def get(self, name):
        """The scenario function, or a KeyError naming the options."""
        try:
            return self._scenarios[name][1]
        except KeyError:
            raise KeyError("no %s scenario for %r (have: %s)"
                           % (self.kind, name, ", ".join(self.names())))

    def listing(self, indent="  "):
        """Help-text lines, one scenario per line."""
        width = max((len(name) for name in self._scenarios), default=0)
        return ["%s%-*s %s" % (indent, width + 1, name, description)
                for name, (description, _fn)
                in sorted(self._scenarios.items())]

    # dict-compatible access, so ``SCENARIOS = TRACED`` keeps old call
    # sites (``name in SCENARIOS``, ``SCENARIOS[name][0]``) working.
    def __contains__(self, name):
        return name in self._scenarios

    def __iter__(self):
        return iter(self._scenarios)

    def __len__(self):
        return len(self._scenarios)

    def __getitem__(self, name):
        return self._scenarios[name]


# --- traced benchmark worlds --------------------------------------------
TRACED = ScenarioSet("traced")


def _trace_table1(telemetry):
    """One Table 1 fio cell: DuraSSD, cache on, fsync every 8 writes."""
    from .table1 import measure_cell
    iops = measure_cell("durassd", "on", 8, ios=setups.ops_scale(200),
                        telemetry=telemetry)
    return "fio 4KB randwrite, durassd/on, fsync=8: %.0f IOPS" % iops


def _trace_figure5(telemetry):
    """One LinkBench run: MySQL defaults (ON/ON), 16KB pages."""
    from .figure5 import run_config
    result = run_config(True, True, 16 * units.KIB, clients=16,
                        ops_per_client=max(8, setups.ops_scale(12)),
                        telemetry=telemetry)
    return "LinkBench ON/ON 16KB, 16 clients: %.0f TPS" % result.tps


def _trace_table3(telemetry):
    """The latency-tail configuration of Table 3 (ON/ON, 16KB)."""
    from .figure5 import run_config
    result = run_config(True, True, 16 * units.KIB, clients=16,
                        ops_per_client=max(8, setups.ops_scale(12)),
                        telemetry=telemetry)
    return ("LinkBench ON/ON 16KB: write mean %.1f ms, p99 %.1f ms"
            % (result.writes.mean * 1e3,
               result.writes.percentile(0.99) * 1e3))


def _trace_bursts(telemetry):
    """Write burst absorbed by DuraSSD with barriers off."""
    from .bursts import run_one
    outcome = run_one(make_durassd, False, 8,
                      burst_writes=setups.ops_scale(200),
                      telemetry=telemetry)
    return ("burst drained in %.3f s; read p99 %.2f ms"
            % (outcome["burst_seconds"], outcome["read_p99_ms"]))


TRACED.register("table1", "one fio cell (durassd, cache on, fsync=8)",
                _trace_table1)
TRACED.register("figure5", "one LinkBench run (ON/ON, 16KB pages)",
                _trace_figure5)
TRACED.register("table3", "the ON/ON latency-tail LinkBench run",
                _trace_table3)
TRACED.register("bursts", "a write burst on DuraSSD, barriers off",
                _trace_bursts)


# --- gray-fault profiles -------------------------------------------------
_PROFILE_DESCRIPTIONS = {
    "none": "no injected faults (healthy control)",
    "mild": "sparse short stalls and small GC storms",
    "stalls": "frequent millisecond command stalls",
    "gc-storm": "dense 10x-latency garbage-collection storms",
    "pause": "firmware pauses: device accepts no new commands",
    "queue-full": "device queue-full backpressure episodes",
    "hang": "one curable hang (a soft reset recovers it)",
    "hang-permanent": "a permanent hang; the engine must demote",
}

GRAY_PROFILES = ScenarioSet("gray-fault profile")
for _name, _maker in sorted(PROFILES.items()):
    GRAY_PROFILES.register(
        _name, _PROFILE_DESCRIPTIONS.get(_name, "gray-fault profile"),
        _maker)


# --- silent-corruption profiles -----------------------------------------
_CORRUPTION_DESCRIPTIONS = {
    "bit-rot": "retention decay: stored blocks silently turn to garbage",
    "read-disturb": "reads degrade neighbouring data after serving it",
    "misdirected": "writes silently land on an aliased LBA",
    "lost-write": "writes acked but never persisted (stale data remains)",
    "corruption-mix": "all four silent-corruption fault kinds together",
}

CORRUPTION_PROFILES = ScenarioSet("corruption profile")
for _name in sorted(_CORRUPTION_MAKERS):
    CORRUPTION_PROFILES.register(
        _name,
        _CORRUPTION_DESCRIPTIONS.get(_name, "silent-corruption profile"),
        (lambda name: lambda seed=0: make_corruption_profile(name, seed))(
            _name))


# --- whole-device fail-stop schedules ------------------------------------
_DEATH_DESCRIPTIONS = {
    "none": "no device death (healthy control)",
    "early-death": "one member fail-stops early in the stream",
    "mid-death": "one member fail-stops mid-stream",
    "wearout": "SMART wear threshold trips a fail-stop",
    "double-death": "a second member dies while the first rebuilds",
}

DEATH_PROFILES = ScenarioSet("death profile")
for _name in sorted(_DEATH_MAKERS):
    DEATH_PROFILES.register(
        _name,
        _DEATH_DESCRIPTIONS.get(_name, "fail-stop death schedule"),
        (lambda name: lambda seed=0: make_death_schedule(name, seed))(
            _name))
