"""Figure 6 — LinkBench buffer miss ratio and TPS vs buffer-pool size.

OFF/OFF configuration (the DuraSSD-friendly one), buffer pool swept
from 2GB to 10GB (scaled), page sizes 16/8/4KB.  Figure 6(a): the miss
ratio falls faster with 4KB pages; Figure 6(b): the TPS gap between
page sizes widens with the pool, with no saturation.
"""

from ..sim import units
from .figure5 import run_config
from .tableio import render_table

PAGE_SIZES = (16 * units.KIB, 8 * units.KIB, 4 * units.KIB)
BUFFER_GB = (2, 4, 6, 8, 10)

#: approximate values read off the figure
PAPER_MISS_APPROX = {
    16 * units.KIB: (8.5, 7.0, 6.0, 5.2, 4.5),
    8 * units.KIB: (6.5, 5.4, 4.7, 4.2, 3.9),
    4 * units.KIB: (5.6, 4.6, 4.0, 3.6, 3.4),
}
PAPER_TPS_APPROX = {
    16 * units.KIB: (9000, 11000, 12500, 14000, 15000),
    8 * units.KIB: (14000, 17500, 20000, 22000, 24000),
    4 * units.KIB: (18000, 23000, 27000, 30000, 32000),
}


def run():
    """{page_size: [(miss_ratio, tps) per buffer size]}"""
    results = {}
    for page_size in PAGE_SIZES:
        series = []
        for buffer_gb in BUFFER_GB:
            outcome = run_config(False, False, page_size,
                                 buffer_gb=buffer_gb)
            series.append((outcome.buffer_miss_ratio, outcome.tps))
        results[page_size] = series
    return results


def format_table(results):
    headers = ["page size"] + ["%dGB" % gb for gb in BUFFER_GB]
    miss_rows, tps_rows = [], []
    for page_size in PAGE_SIZES:
        label = "%dKB" % (page_size // units.KIB)
        series = results[page_size]
        miss_rows.append([label] + ["%.1f%%" % (100 * m)
                                    for m, _t in series])
        miss_rows.append(["  (paper~)"] + ["%.1f%%" % v for v in
                                           PAPER_MISS_APPROX[page_size]])
        tps_rows.append([label] + [round(t) for _m, t in series])
        tps_rows.append(["  (paper~)"] + list(PAPER_TPS_APPROX[page_size]))
    part_a = render_table("Figure 6(a): buffer miss ratio (OFF/OFF)",
                          headers, miss_rows)
    part_b = render_table("Figure 6(b): TPS vs buffer pool size (OFF/OFF)",
                          headers, tps_rows)
    from .charts import render_line_chart
    miss_series = {"%dKB" % (ps // units.KIB):
                   [100 * m for m, _t in results[ps]]
                   for ps in PAGE_SIZES}
    chart = render_line_chart("\nFigure 6(a) as lines (miss %):",
                              list(BUFFER_GB), miss_series)
    return part_a + "\n\n" + part_b + "\n" + chart


def main():
    print(format_table(run()))


if __name__ == "__main__":
    main()
