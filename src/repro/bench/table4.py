"""Table 4 — TPC-C throughput (tpmC) on the commercial DBMS.

1,000 warehouses, 2GB buffer pool, data files opened O_DSYNC on ext4.
Barrier on/off by page size 16/8/4KB.  The paper's result: turning the
barrier off multiplies tpmC by 15.3-22.8x — three times the LinkBench
gain, because this engine barriers *every* page write and runs a 5x
smaller buffer pool.
"""

from ..sim import units
from ..workloads.tpcc import TPCCConfig, TPCCWorkload
from . import setups
from .tableio import render_table

PAGE_SIZES = (16 * units.KIB, 8 * units.KIB, 4 * units.KIB)

PAPER = {
    True: (4291, 4845, 7729),
    False: (65809, 110400, 150815),
}


def run_config(barrier, page_size, clients=64, txns_per_client=None):
    sim = setups.fresh_world()
    engine, _devices = setups.commercial_setup(sim, page_size, barrier,
                                               buffer_gb=2)
    workload = TPCCWorkload(engine, TPCCConfig(scale=setups.scale_factor()))
    if txns_per_client is None:
        txns_per_client = setups.ops_scale(80)
    return workload.run(clients=clients, txns_per_client=txns_per_client,
                        warmup_txns=15)


def run():
    """{barrier: [TPCCResult per page size]}"""
    return {barrier: [run_config(barrier, page_size)
                      for page_size in PAGE_SIZES]
            for barrier in (True, False)}


def format_table(results):
    headers = ["barrier", "16KB", "8KB", "4KB"]
    rows = []
    for barrier in (True, False):
        label = "ON" if barrier else "OFF"
        rows.append([label] + [round(r.tpmc) for r in results[barrier]])
        rows.append(["  (paper)"] + list(PAPER[barrier]))
    gains = [results[False][i].tpmc / max(1e-9, results[True][i].tpmc)
             for i in range(len(PAGE_SIZES))]
    table = render_table("Table 4: TPC-C throughput in tpmC", headers, rows)
    return table + ("\nbarrier-off gain: %s (paper: 15.3x / 22.8x / 19.5x)"
                    % " / ".join("%.1fx" % g for g in gains))


def main():
    print(format_table(run()))


if __name__ == "__main__":
    main()
