"""Transient flash-fault model (read/program/erase errors, bad blocks).

NAND fails in ways power loss does not: a program or erase operation can
report failure (and eventually retire the block as a *grown bad block*),
and a read can return uncorrectable data even though the page was
programmed cleanly.  Firmware is expected to mask the transient cases
with bounded retry + backoff, remap around grown bad blocks, and — on a
capacitor-backed device — to *demote itself* when its energy reserve can
no longer cover the dump, rather than keep advertising durability it
cannot deliver.

The model here is seeded and deterministic: the same
:class:`FaultConfig` produces the same fault schedule, which the torture
harness relies on for replayable repro artifacts.  Rates are
per-operation Bernoulli draws, which is the standard abstraction used by
SSD simulators for transient (non-wearout) faults; wearout itself is
modelled by the FTL's erase counters.
"""

from ..sim.rng import make_rng


class FlashFaultError(Exception):
    """Raised when bounded retry could not mask a flash fault."""


class FaultConfig:
    """Seeded rates for the transient-fault model.

    Rates are probabilities per operation.  ``initial_bad_blocks`` are
    factory-marked bad blocks retired before the device serves I/O;
    ``program_failures_to_retire`` is how many program failures a block
    accumulates before the firmware retires it as grown-bad.
    """

    def __init__(self, seed=0, read_error_rate=0.0, program_error_rate=0.0,
                 erase_error_rate=0.0, initial_bad_blocks=0,
                 max_retries=3, retry_backoff=50e-6,
                 program_failures_to_retire=2):
        for name, rate in (("read_error_rate", read_error_rate),
                           ("program_error_rate", program_error_rate),
                           ("erase_error_rate", erase_error_rate)):
            if not 0.0 <= rate < 1.0:
                raise ValueError("%s must be in [0, 1): %r" % (name, rate))
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.seed = seed
        self.read_error_rate = read_error_rate
        self.program_error_rate = program_error_rate
        self.erase_error_rate = erase_error_rate
        self.initial_bad_blocks = initial_bad_blocks
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.program_failures_to_retire = program_failures_to_retire

    def to_json(self):
        return {
            "seed": self.seed,
            "read_error_rate": self.read_error_rate,
            "program_error_rate": self.program_error_rate,
            "erase_error_rate": self.erase_error_rate,
            "initial_bad_blocks": self.initial_bad_blocks,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
            "program_failures_to_retire": self.program_failures_to_retire,
        }

    @classmethod
    def from_json(cls, data):
        return cls(**data)


class TransientFaultModel:
    """Deterministic per-operation fault oracle for a :class:`FlashArray`.

    Attach with :meth:`repro.devices.ssd.FlashSSD.inject_faults` (which
    also retires the factory bad blocks); the FTL then consults the
    model's retry policy on every failure.
    """

    def __init__(self, config=None):
        self.config = config or FaultConfig()
        self._rng = make_rng(("flash-faults", self.config.seed))
        self.counters = {"read_errors": 0, "program_errors": 0,
                         "erase_errors": 0}

    def pick_initial_bad_blocks(self, total_blocks):
        """Factory bad-block list: a deterministic sample of the array."""
        count = min(self.config.initial_bad_blocks, max(0, total_blocks - 1))
        if count <= 0:
            return []
        return sorted(self._rng.sample(range(total_blocks), count))

    # --- per-operation oracles (called at operation completion) ----------
    def program_fails(self, ppn):
        if self.config.program_error_rate <= 0.0:
            return False
        if self._rng.random() < self.config.program_error_rate:
            self.counters["program_errors"] += 1
            return True
        return False

    def read_fails(self, ppn):
        if self.config.read_error_rate <= 0.0:
            return False
        if self._rng.random() < self.config.read_error_rate:
            self.counters["read_errors"] += 1
            return True
        return False

    def erase_fails(self, block):
        if self.config.erase_error_rate <= 0.0:
            return False
        if self._rng.random() < self.config.erase_error_rate:
            self.counters["erase_errors"] += 1
            return True
        return False
