"""Whole-device fail-stop failure model: scheduled and wear-out deaths.

Every fault model so far is *transient* (stalls, NAND errors, bit rot):
the device eventually answers.  Real drives also die outright — a
controller failure, a firmware panic, media worn past its endurance
budget — and from the host every subsequent command fails hard and
immediately.  That is the classic *fail-stop* model: no wrong answers,
no silence, just a corpse that reports itself dead.

A :class:`DeviceDeathSchedule` is the seeded, JSON-serializable
description (mirroring :class:`~repro.failures.corruption.CorruptionConfig`):
a scheduled death instant (``die_at``, staggered per member by
``stagger * index`` so a second member can die *during* the first
rebuild) and/or SMART trip thresholds — grown bad blocks or media wear
— checked against the device's own :meth:`smart` self-report after
every command.  A :class:`DeviceDeathModel` attaches to one device via
:meth:`repro.devices.base.StorageDevice.inject_death`; on death the
device aborts everything in flight and completes every later command
with :class:`~repro.devices.base.DeviceDeadError`.

:attr:`DeviceDeathModel.first_fault_time` records the death instant,
which is what chaos verdicts subtract from the first member-down SLO
alert to report detection latency, exactly like gray faults and silent
corruption.
"""

from ..sim.rng import make_rng


class DeviceDeathSchedule:
    """Seeded description of when (and why) a device fail-stops.

    ``die_at`` is an absolute sim instant (``None`` = no scheduled
    death); member ``i`` of a volume dies at ``die_at + i * stagger``,
    so a positive ``stagger`` produces the second-death-during-rebuild
    scenario.  ``grown_bad_limit`` / ``wear_limit_pct`` arm SMART trip
    wires against the device's own self-report (grown bad blocks,
    media wear percent).  ``horizon`` plays the same role as the gray
    profiles' horizon: named profiles describe deaths over a generic
    window and the chaos harness rescales them onto the stream.
    """

    def __init__(self, seed=0, die_at=None, stagger=0.0,
                 grown_bad_limit=None, wear_limit_pct=None, horizon=10.0):
        if die_at is not None and die_at < 0:
            raise ValueError("die_at must be >= 0: %r" % (die_at,))
        if stagger < 0:
            raise ValueError("stagger must be >= 0: %r" % (stagger,))
        if grown_bad_limit is not None and grown_bad_limit < 1:
            raise ValueError("grown_bad_limit must be >= 1")
        if wear_limit_pct is not None and wear_limit_pct <= 0:
            raise ValueError("wear_limit_pct must be > 0")
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        self.seed = seed
        self.die_at = die_at
        self.stagger = stagger
        self.grown_bad_limit = grown_bad_limit
        self.wear_limit_pct = wear_limit_pct
        self.horizon = horizon

    @property
    def quiet(self):
        """True when no death can ever fire."""
        return (self.die_at is None and self.grown_bad_limit is None
                and self.wear_limit_pct is None)

    def to_json(self):
        return {
            "seed": self.seed,
            "die_at": self.die_at,
            "stagger": self.stagger,
            "grown_bad_limit": self.grown_bad_limit,
            "wear_limit_pct": self.wear_limit_pct,
            "horizon": self.horizon,
        }

    @classmethod
    def from_json(cls, data):
        return cls(**data)


#: named death profiles for the chaos/failover CLIs.  Instants are laid
#: out over the generic 10s horizon and rescaled by the chaos harness
#: onto the stream duration, like the gray profiles' ``hang_at``.
DEATH_PROFILES = {
    "none": dict(),
    "early-death": dict(die_at=2.0),
    "mid-death": dict(die_at=5.0),
    "wearout": dict(wear_limit_pct=0.01),
    "double-death": dict(die_at=3.0, stagger=3.5),
}


def make_death_schedule(name, seed=0):
    """A :class:`DeviceDeathSchedule` for a named profile."""
    if name not in DEATH_PROFILES:
        raise ValueError("unknown death profile %r (choices: %s)"
                         % (name, ", ".join(sorted(DEATH_PROFILES))))
    return DeviceDeathSchedule(seed=seed, **DEATH_PROFILES[name])


class DeviceDeathModel:
    """Deterministic fail-stop oracle for one device.

    ``salt`` keeps same-schedule models on different devices on
    independent streams; ``index`` is the member's position in its
    volume, which staggers scheduled deaths (``die_at + index *
    stagger``) so mirror members never die in lock-step.
    """

    def __init__(self, schedule=None, salt="", index=0):
        self.schedule = schedule or DeviceDeathSchedule()
        self.salt = salt
        self.index = index
        self._rng = make_rng(("device-death", salt, self.schedule.seed))
        self.counters = {"deaths": 0, "commands_failed": 0}
        #: simulated time of the death, or None while the device lives
        self.first_fault_time = None
        self.cause = None

    @property
    def die_at(self):
        """This member's scheduled death instant, or None."""
        if self.schedule.die_at is None:
            return None
        return self.schedule.die_at + self.index * self.schedule.stagger

    def attach(self, device):
        """Arm the model on ``device`` (called by ``inject_death``)."""
        if self.die_at is not None:
            device.sim.process(self._countdown(device))

    def _countdown(self, device):
        yield device.sim.timeout(self.die_at)
        device.fail_stop("scheduled-death")

    def on_death(self, now, cause):
        self.counters["deaths"] += 1
        self.cause = cause
        if self.first_fault_time is None:
            self.first_fault_time = now

    def on_dead_command(self):
        """A command was issued to (or caught inside) the corpse."""
        self.counters["commands_failed"] += 1

    def check_smart(self, device):
        """Trip the SMART thresholds against the device's self-report.

        Called by the device after each completed command; the command
        that crossed the threshold still completes (and is acked) — the
        *next* one finds the corpse.
        """
        schedule = self.schedule
        if schedule.grown_bad_limit is None \
                and schedule.wear_limit_pct is None:
            return
        media = device.smart().get("media") or {}
        if schedule.grown_bad_limit is not None and \
                media.get("grown_bad_blocks", 0) >= schedule.grown_bad_limit:
            device.fail_stop("smart-grown-bad-blocks")
        elif schedule.wear_limit_pct is not None and \
                media.get("media_wear_pct", 0.0) >= schedule.wear_limit_pct:
            device.fail_stop("smart-wearout")
