"""Post-crash correctness checking.

Verifies, block by block, the three properties DuraSSD guarantees and
volatile-cache devices violate (Sections 2.1, 2.2, 3.2, 3.3):

* **durability** — every acknowledged write command is fully present;
* **atomicity** — no command is *partially* present (torn/shorn);
* **ordering** — for any LBA, the surviving value is not older than a
  value that a later-acked overwrite of the same LBA replaced, and the
  set of surviving commands per-LBA is consistent with ack order.

Inputs come from the device's ``ack_log`` (enable ``record_acks``
before the run) and its post-reboot ``read_persistent`` view.
"""

from ..flash.torn import is_torn


class Violation:
    """One detected anomaly."""

    def __init__(self, kind, lba, expected, found, ack_sequence):
        self.kind = kind
        self.lba = lba
        self.expected = expected
        self.found = found
        self.ack_sequence = ack_sequence

    def __repr__(self):
        return ("<Violation %s lba=%d expected=%r found=%r ack=%d>"
                % (self.kind, self.lba, self.expected, self.found,
                   self.ack_sequence))


class CheckReport:
    def __init__(self):
        self.commands_checked = 0
        self.lost_writes = []
        self.torn_commands = []
        self.shorn_blocks = []
        self.stale_blocks = []

    @property
    def violations(self):
        return (self.lost_writes + self.torn_commands + self.shorn_blocks
                + self.stale_blocks)

    @property
    def clean(self):
        return not self.violations

    def __repr__(self):
        return ("<CheckReport commands=%d lost=%d torn=%d shorn=%d stale=%d>"
                % (self.commands_checked, len(self.lost_writes),
                   len(self.torn_commands), len(self.shorn_blocks),
                   len(self.stale_blocks)))


def latest_acked_values(ack_log):
    """{lba: (value, ack_sequence)} for the newest acked write per LBA."""
    latest = {}
    for record in ack_log:
        for index, lba in enumerate(record.blocks):
            latest[lba] = (record.payload[index], record.sequence)
    return latest


def check_device(device, ack_log=None):
    """Check a rebooted device against its ack log.

    Every block of every acked command must read back as the value of
    the *newest* acked write to that LBA (older acked values were
    legitimately superseded).  TORN anywhere is a shorn write.  A
    multi-block command that is the newest writer of all its blocks must
    be present in full or counted torn.
    """
    if ack_log is None:
        ack_log = device.ack_log
    report = CheckReport()
    latest = latest_acked_values(ack_log)

    # per-LBA durability / staleness / shorn checks
    for lba, (expected, sequence) in sorted(latest.items()):
        found = device.read_persistent(lba)
        if is_torn(found):
            report.shorn_blocks.append(
                Violation("shorn", lba, expected, found, sequence))
        elif found is None:
            report.lost_writes.append(
                Violation("lost", lba, expected, found, sequence))
        elif found != expected:
            report.stale_blocks.append(
                Violation("stale", lba, expected, found, sequence))

    # command-level atomicity: among blocks where this command is still
    # the newest writer, it must be all-there or (if superseded nowhere)
    # all-absent — a mix is a torn command.
    for record in ack_log:
        report.commands_checked += 1
        if record.nblocks < 2:
            continue
        owned = [index for index, lba in enumerate(record.blocks)
                 if latest[lba][1] == record.sequence]
        if len(owned) < 2:
            continue
        blocks = record.blocks
        present = []
        for index in owned:
            # blocks[index], not record.lba + index: a vectored command's
            # LBAs need not be contiguous.
            lba = blocks[index]
            found = device.read_persistent(lba)
            present.append(found == record.payload[index])
        if any(present) and not all(present):
            report.torn_commands.append(
                Violation("torn-command", record.lba,
                          record.payload, None, record.sequence))
    return report


def check_undetected_corruption(audit):
    """The end-to-end integrity verdict: *no acked read ever returns
    corrupted data undetected*.

    ``audit`` is the harness-side passive auditor (a
    :class:`~repro.host.volume.VerifyingTarget` with ``fail_stop`` off)
    stacked outside the defense under test.  Every read that completed
    carrying a value the auditor's independent fingerprint database
    could not verify was served to the host as if it were good data —
    the defense (checksums, mirror read-repair) neither failed the read
    nor repaired it.  Returns the count of such undetected corrupt
    reads; zero is the only passing verdict for a world that promises
    integrity.
    """
    if audit is None:
        return 0
    return audit.checksums.counters["mismatches"]


def check_write_order(device, ack_log=None):
    """Ordering check: scan acked writes oldest->newest; once a write is
    found missing, no *later* acked write may be present (prefix rule).

    Only meaningful per-LBA-stream for devices claiming ordered
    persistence; a durable-cache device passes trivially because nothing
    is ever missing.  Returns the list of (missing_seq, present_seq)
    inversions found.
    """
    if ack_log is None:
        ack_log = device.ack_log
    latest = latest_acked_values(ack_log)
    inversions = []
    first_missing = None
    for record in ack_log:
        # consider only blocks this record still owns
        fully_owned = all(latest[lba][1] == record.sequence
                          for lba in record.blocks)
        if not fully_owned:
            continue
        present = all(device.read_persistent(lba) == record.payload[index]
                      for index, lba in enumerate(record.blocks))
        if not present and first_missing is None:
            first_missing = record.sequence
        elif present and first_missing is not None:
            inversions.append((first_missing, record.sequence))
    return inversions
