"""Power-fault injection (after Zheng et al., FAST'13 [33]).

The injector cuts power at an arbitrary simulated instant: the
simulation world freezes mid-I/O (StopSimulation), every device's
``power_fail`` runs — volatile caches vanish, in-flight NAND programs
and platter writes shear, DuraSSD dumps — and the experiment then
inspects persistent state, optionally reboots, and continues.
"""

from ..sim.engine import StopSimulation


class PowerCut:
    """Record of one injected power failure."""

    def __init__(self, at_time):
        self.at_time = at_time
        self.fired = False
        self.cancelled = False
        self.device_reports = {}


class PowerFailureInjector:
    """Schedules and executes power cuts over a set of devices."""

    def __init__(self, sim, devices):
        self.sim = sim
        self.devices = list(devices)
        self.cuts = []

    def schedule_cut(self, at_time):
        """Arrange for the power to fail at ``at_time``; the ongoing
        ``sim.run()`` stops at that instant."""
        if at_time < self.sim.now:
            raise ValueError(
                "cut scheduled in the past: at_time=%r < now=%r"
                % (at_time, self.sim.now))
        cut = PowerCut(at_time)
        self.cuts.append(cut)

        def fire(_sim):
            if cut.cancelled:
                return
            self.execute_cut(cut)
            raise StopSimulation()

        self.sim.schedule(at_time - self.sim.now, fire)
        return cut

    def cancel_pending_cuts(self):
        """Disarm every scheduled-but-unfired cut; returns the count."""
        cancelled = 0
        for cut in self.cuts:
            if not cut.fired and not cut.cancelled:
                cut.cancelled = True
                cancelled += 1
        return cancelled

    def execute_cut(self, cut=None):
        """Cut power right now (also usable without scheduling).

        Idempotent per device: a device that is already unpowered (for
        example from an earlier overlapping cut) is left alone rather
        than double-failed, and contributes no report.
        """
        if cut is None:
            cut = PowerCut(self.sim.now)
            self.cuts.append(cut)
        for device in self.devices:
            if not device.powered:
                continue
            cut.device_reports[device.name] = device.power_fail()
        cut.fired = True
        return cut

    def reboot_all(self):
        """Restore power everywhere; returns {device: recovery_seconds}.

        Any still-pending scheduled cut is disarmed first: it described a
        power event of the epoch that just ended, and letting it fire
        into the rebooted world would cut power at a time nobody asked
        about.
        """
        self.cancel_pending_cuts()
        return {device.name: device.reboot() for device in self.devices}


def run_until_power_cut(sim, injector, at_time):
    """Convenience: schedule a cut, run to it, return the cut record."""
    cut = injector.schedule_cut(at_time)
    sim.run()
    if not cut.fired:
        raise RuntimeError("simulation drained before the scheduled cut")
    return cut
