"""Power-fault injection (after Zheng et al., FAST'13 [33]).

The injector cuts power at an arbitrary simulated instant: the
simulation world freezes mid-I/O (StopSimulation), every device's
``power_fail`` runs — volatile caches vanish, in-flight NAND programs
and platter writes shear, DuraSSD dumps — and the experiment then
inspects persistent state, optionally reboots, and continues.
"""

from ..sim.engine import StopSimulation


class PowerCut:
    """Record of one injected power failure."""

    def __init__(self, at_time):
        self.at_time = at_time
        self.fired = False
        self.device_reports = {}


class PowerFailureInjector:
    """Schedules and executes power cuts over a set of devices."""

    def __init__(self, sim, devices):
        self.sim = sim
        self.devices = list(devices)
        self.cuts = []

    def schedule_cut(self, at_time):
        """Arrange for the power to fail at ``at_time``; the ongoing
        ``sim.run()`` stops at that instant."""
        cut = PowerCut(at_time)
        self.cuts.append(cut)

        def fire(_sim):
            self.execute_cut(cut)
            raise StopSimulation()

        self.sim.schedule(max(0.0, at_time - self.sim.now), fire)
        return cut

    def execute_cut(self, cut=None):
        """Cut power right now (also usable without scheduling)."""
        if cut is None:
            cut = PowerCut(self.sim.now)
            self.cuts.append(cut)
        for device in self.devices:
            cut.device_reports[device.name] = device.power_fail()
        cut.fired = True
        return cut

    def reboot_all(self):
        """Restore power everywhere; returns {device: recovery_seconds}."""
        return {device.name: device.reboot() for device in self.devices}


def run_until_power_cut(sim, injector, at_time):
    """Convenience: schedule a cut, run to it, return the cut record."""
    cut = injector.schedule_cut(at_time)
    sim.run()
    if not cut.fired:
        raise RuntimeError("simulation drained before the scheduled cut")
    return cut
