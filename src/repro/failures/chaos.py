"""Gray-failure chaos harness: end-to-end degraded-mode verification.

The torture harness answers "does a power cut ever break a promise?";
this harness answers the same question for *gray* failures — devices
that stall, pause, storm or hang without ever failing stop
(:mod:`repro.failures.grayfaults`) — with the full tolerance stack
armed: host command deadlines, abort/soft-reset/retry
(:mod:`repro.host.lifecycle`) and database graceful degradation
(:mod:`repro.db.degrade`).

One chaos run asserts three properties:

1. **Liveness.**  The seeded operation stream completes — possibly with
   per-operation failures, but never a deadlock.  A watchdog horizon
   derived from the retry policy converts "stuck forever" into a
   reported violation instead of a hung simulation.
2. **Safety.**  After the stream, power is cut and the world recovers;
   every block-level and transaction-oracle invariant the configuration
   promises must hold — aborted/retried commands may never corrupt,
   lose or reorder acked data.
3. **Bounded degradation.**  Against curable fault profiles the run
   must finish within ``degradation_bound`` times the fault-free
   completion time of the identical world.  A permanent hang instead
   must drive the engine into read-only degraded mode
   (``expect_read_only``), not into a convoy.

A violating run minimizes to the shortest failing operation prefix and
round-trips through a self-contained JSON artifact, exactly like the
torture harness.
"""

import json
import math

from ..db import dbrecovery
from ..db.degrade import DegradedError
from ..db.pages import TornPageError
from ..devices.base import DeviceDeadError
from ..host.integrity import CorruptDataError
from ..host.lifecycle import DeviceTimeoutError, TimeoutPolicy
from ..telemetry.hub import Telemetry
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.slo import SLOMonitor, default_chaos_rules
from .checker import (
    check_device,
    check_undetected_corruption,
    check_write_order,
)
from .corruption import make_corruption_profile
from .death import DeviceDeathSchedule, make_death_schedule
from .grayfaults import GrayFaultProfile, make_profile
from .injector import PowerFailureInjector
from .torture import TortureScenario, build_world, generate_ops

CHAOS_ARTIFACT_FORMAT = "repro.chaos/1"

#: default allowed completion-time inflation vs the fault-free run
DEFAULT_DEGRADATION_BOUND = 8.0

#: device commands a single database operation may plausibly escalate
#: (index-path reads, evictions, double writes, log flush, barriers)
_COMMANDS_PER_OP = 16


#: per-command deadline for chaos worlds: ~100x a healthy command on
#: each preset, but short enough that episode-scale stalls escalate.
#: The HDD needs headroom for multi-millisecond seeks under load.
CHAOS_DEADLINES = {"hdd": 0.2, "ssd-a": 0.01, "ssd-b": 0.01,
                   "durassd": 0.01}
CHAOS_DEADLINE = 0.01

#: seconds of simulated workload one LinkBench operation roughly takes
#: on the fast presets — used to rescale profile horizons to the stream
_SECONDS_PER_OP = 0.75e-3

#: metrics window length for the chaos SLO monitor: fine enough that a
#: timeout burst is localized to within ~half a deadline
CHAOS_METRICS_INTERVAL = 0.005


def chaos_scenario(device="durassd", profile="mild", seed=0, ops=120,
                   gray_target="both", engine="innodb", barriers=None,
                   timeout_policy=None, admission_control=True,
                   horizon=None, stripe=1, corruption=None, mirror=1,
                   checksums=None, scrub=None, death=None,
                   death_target="data", spares=0, rebuild_pace=None,
                   interface="sata", submission_queues=2):
    """A fully seeded chaos world description (a gray
    :class:`~repro.failures.torture.TortureScenario`).

    ``profile`` is a name from :data:`repro.failures.grayfaults.PROFILES`
    or a :class:`GrayFaultProfile`.  Named profiles describe episode
    densities over a generic horizon; they are rescaled (horizon and
    hang instant, proportionally) onto this stream's expected duration
    so the episodes actually intersect the run.  The timeout policy
    defaults to a sim-scaled deadline seeded from ``seed`` so backoff
    jitter replays exactly.

    ``corruption`` is a name from
    :data:`repro.failures.corruption.CORRUPTION_PROFILES`, a config
    dict, or a :class:`~repro.failures.corruption.CorruptionConfig`.
    With corruption armed, host checksums default on and (on a mirrored
    topology, ``mirror >= 2``) the background scrubber defaults on, so
    the standard corruption chaos world is the fully defended one.

    ``death`` is a name from :data:`repro.failures.death.DEATH_PROFILES`
    or a :class:`~repro.failures.death.DeviceDeathSchedule`.  Named
    death profiles (like gray profiles) are scheduled on a generic
    horizon and rescaled (kill instant and stagger, proportionally)
    onto this stream's expected duration so the kill actually lands
    mid-run.
    """
    if isinstance(corruption, str):
        corruption = make_corruption_profile(corruption, seed)
    if checksums is None:
        checksums = corruption is not None
    if scrub is None:
        scrub = mirror > 1 and checksums
    if horizon is None:
        horizon = max(0.02, ops * _SECONDS_PER_OP)
    if isinstance(profile, str):
        profile = make_profile(profile, seed)
        data = profile.to_json()
        scale = horizon / data["horizon"]
        data["horizon"] = horizon
        if data["hang_at"] is not None:
            data["hang_at"] *= scale
        profile = GrayFaultProfile(**data)
    if isinstance(death, str):
        death = make_death_schedule(death, seed)
        data = death.to_json()
        scale = horizon / data["horizon"]
        data["horizon"] = horizon
        if data["die_at"] is not None:
            data["die_at"] *= scale
        data["stagger"] *= scale
        death = DeviceDeathSchedule(**data)
    if timeout_policy is None:
        deadline = CHAOS_DEADLINES.get(device, CHAOS_DEADLINE)
        timeout_policy = TimeoutPolicy(deadline=deadline,
                                       backoff_base=1e-3, seed=seed)
    return TortureScenario(engine=engine, device=device, barriers=barriers,
                           ops=ops, seed=seed, timeout_policy=timeout_policy,
                           gray_profile=profile, gray_target=gray_target,
                           admission_control=admission_control,
                           stripe=stripe, corruption=corruption,
                           mirror=mirror, checksums=checksums, scrub=scrub,
                           death=death, death_target=death_target,
                           spares=spares, rebuild_pace=rebuild_pace,
                           interface=interface,
                           submission_queues=submission_queues)


class ChaosResult:
    """Outcome of one chaos run: op tallies, counters, verdict."""

    def __init__(self, scenario):
        self.scenario = scenario
        self.ops_total = 0
        self.ops_ok = 0
        self.ops_timed_out = 0
        self.ops_rejected = 0
        self.ops_failed_hard = 0
        self.ops_corrupt_detected = 0
        self.undetected_corrupt_reads = 0
        self.integrity_expected = False
        self.completed = False
        self.read_only = False
        self.duration = 0.0
        self.baseline_duration = None
        self.degradation_ratio = None
        self.expected_clean = True
        self.violations = []
        self.host_counters = {}
        self.gray_counters = {}
        self.db_counters = {}
        # SLO-monitor verdict: fired alert episodes, the first instant
        # an injection perturbed a command, and how long the monitor
        # took to notice (first fire minus first fault).
        self.alerts = []
        self.slo_rules_evaluated = 0
        self.first_fault_s = None
        self.detection_latency_s = None
        # Failover verdict: member deaths, degraded windows, rebuild
        # MTTR and detected data loss (None when nothing ever died).
        self.failover = None

    @property
    def clean(self):
        return not self.violations

    @property
    def failed(self):
        """A violation where the configuration promised none.

        An integrity-armed world (checksums or mirror) additionally
        fails on any ``integrity:`` violation: detection is promised
        even when corruption voids the crash-consistency promise.
        """
        if self.expected_clean and bool(self.violations):
            return True
        return self.integrity_expected and any(
            violation.startswith("integrity:")
            for violation in self.violations)

    def to_json(self):
        return {
            "ops_total": self.ops_total,
            "ops_ok": self.ops_ok,
            "ops_timed_out": self.ops_timed_out,
            "ops_rejected": self.ops_rejected,
            "ops_failed_hard": self.ops_failed_hard,
            "ops_corrupt_detected": self.ops_corrupt_detected,
            "undetected_corrupt_reads": self.undetected_corrupt_reads,
            "integrity_expected": self.integrity_expected,
            "completed": self.completed,
            "read_only": self.read_only,
            "duration": self.duration,
            "baseline_duration": self.baseline_duration,
            "degradation_ratio": self.degradation_ratio,
            "expected_clean": self.expected_clean,
            "violations": list(self.violations),
            "host_counters": self.host_counters,
            "gray_counters": self.gray_counters,
            "db_counters": self.db_counters,
            "alerts": list(self.alerts),
            "slo_rules_evaluated": self.slo_rules_evaluated,
            "first_fault_s": self.first_fault_s,
            "detection_latency_s": self.detection_latency_s,
            "failover": self.failover,
        }

    def __repr__(self):
        return ("<ChaosResult ok=%d/%d timed_out=%d rejected=%d "
                "read_only=%r violations=%d>"
                % (self.ops_ok, self.ops_total, self.ops_timed_out,
                   self.ops_rejected, self.read_only, len(self.violations)))


def _merge_gray_counters(world):
    """Gray-fault counters summed per role (a striped data target has
    several member devices; their episode tallies merge)."""
    merged = {}
    roles = (("data", getattr(world, "data_devices",
                              (world.data_device,))),
             ("log", (world.log_device,)))
    for role, devices in roles:
        totals = {}
        for device in devices:
            if device.gray_faults is None:
                continue
            for key, value in device.gray_faults.counters.items():
                totals[key] = totals.get(key, 0) + value
        if totals:
            merged[role] = totals
    return merged


def _chaos_client(workload, ops, progress, outcomes):
    """Sequential client that survives per-operation gray failures.

    Timeout escalations and degraded-mode rejections are tolerated and
    tallied — the client must always make progress to the next
    operation; any *other* exception is a harness bug and propagates.
    """
    for index, (name, node) in enumerate(ops):
        try:
            yield from workload._operation(name, node)
        except DeviceTimeoutError:
            outcomes["timed_out"] += 1
        except DeviceDeadError:
            # A fail-stopped device (or fully dead volume) answers
            # every command with a hard error: tolerated, tallied.
            outcomes["dead"] = outcomes.get("dead", 0) + 1
        except (CorruptDataError, TornPageError):
            # A checksum (host or database page) turned a corrupt read
            # into an error: detected, fail-stop, tolerated.
            outcomes["corrupt"] = outcomes.get("corrupt", 0) + 1
        except DegradedError:
            outcomes["rejected"] += 1
        else:
            outcomes["ok"] += 1
        progress["completed"] = index + 1


def _ladder_seconds(policy):
    """Worst-case seconds one command spends on the full escalation
    ladder (all deadlines, resets and maximal backoffs)."""
    backoff = sum(policy.backoff_base * policy.backoff_factor ** k
                  * (1.0 + policy.jitter)
                  for k in range(policy.max_attempts - 1))
    return policy.max_attempts * (policy.deadline + 0.01) + backoff


def horizon_guard(scenario, ops):
    """Watchdog instant: any run still going past this is stuck."""
    policy = scenario.timeout_policy or TimeoutPolicy()
    return 10.0 + len(ops) * _COMMANDS_PER_OP * _ladder_seconds(policy)


def baseline_duration(scenario, ops, telemetry=None):
    """Completion time of the identical world with no gray faults.

    The timeout policy stays armed so the comparison isolates the
    *faults*, not the lifecycle plumbing.
    """
    quiet = dict(scenario.to_json())
    quiet["gray_profile"] = None
    quiet["corruption"] = None
    quiet["death"] = None
    quiet["spares"] = 0
    world = build_world(TortureScenario.from_json(quiet), telemetry)
    progress = {"completed": 0}
    outcomes = {"ok": 0, "timed_out": 0, "rejected": 0}
    done = world.sim.process(
        _chaos_client(world.workload, ops, progress, outcomes))
    world.sim.run_until(done)
    world.engine.stop_cleaner()
    if outcomes["ok"] != len(ops):
        raise RuntimeError("fault-free baseline failed operations: %r"
                           % (outcomes,))
    return world.sim.now


def _first_fault_time(world):
    """Earliest instant any device's gray, corruption or death model
    perturbed a command (for corruption: the first silently injected
    fault; for death: the fail-stop instant)."""
    first = None
    for device in world.devices:
        for model in (device.gray_faults, device.corruption,
                      device.death):
            if model is None or model.first_fault_time is None:
                continue
            if first is None or model.first_fault_time < first:
                first = model.first_fault_time
    return first


def _evaluate_slo(world, scenario, profile, result):
    """Run the detection rules over the run's metric windows.

    The rules see only host-observable symptoms (timeout counters,
    read-only demotion, in-flight age) — detection latency measures the
    monitor genuinely *noticing*, not being told about the injection.
    A quiet profile firing any alert is a false-positive violation.
    """
    registry = world.sim.telemetry.metrics
    if not registry.active:
        return
    registry.finish(world.sim.now)
    policy = scenario.timeout_policy or TimeoutPolicy()
    monitor = SLOMonitor(registry, default_chaos_rules(policy.deadline))
    outcomes = monitor.evaluate()
    episodes = [episode for outcome in outcomes
                for episode in outcome.episodes]
    episodes.sort(key=lambda episode: episode.fired_at)
    result.slo_rules_evaluated = sum(
        1 for outcome in outcomes if outcome.evaluations)
    result.alerts = [episode.to_json() for episode in episodes]
    result.first_fault_s = _first_fault_time(world)
    if episodes and result.first_fault_s is not None:
        result.detection_latency_s = (episodes[0].fired_at
                                      - result.first_fault_s)
    corruption_quiet = (scenario.corruption is None
                        or scenario.corruption.quiet)
    death_quiet = scenario.death is None or scenario.death.quiet
    if profile.quiet and corruption_quiet and death_quiet and episodes:
        fired = sorted({episode.rule.name for episode in episodes})
        result.violations.append(
            "slo:false-positive:%s" % ",".join(fired))


def _drain_rebuild(world):
    """Let an in-flight rebuild finish (bounded) after the stream.

    The rebuilder is a background process; the client stream routinely
    completes while blocks are still being copied.  MTTR is a property
    of the repair, not of the stream length, so the simulation idles on
    until the spare is whole — or until a generous per-block bound says
    the rebuild is stuck (reported by the failover verdict)."""
    volume, rebuilder = world.volume, world.rebuilder
    if volume is None or rebuilder is None:
        return
    sim = world.sim

    def pending():
        if all(volume._dead):
            return False
        if volume.rebuild_remaining():
            return True
        # a dead member with a spare still pooled: the rebuilder will
        # claim it on its next idle tick — that counts as in-flight.
        return bool(rebuilder.spares) and any(volume._dead)

    if not pending():
        return
    backlog = max(volume.rebuild_remaining(),
                  len(volume.checksums.tracked()))
    deadline = sim.now + max(2.0, rebuilder.idle * 4
                             + backlog * (rebuilder.pace * 4 + 0.02))
    while pending() and sim.now < deadline:
        sim.run_until(sim.timeout(min(0.05, deadline - sim.now)))


def _evaluate_failover(world, scenario, result):
    """The death verdict: who died, how long the mirror ran degraded,
    whether the rebuild completed (and its MTTR), and — loudest of all
    — whether any acked block is now *detected lost*.

    Detected data loss voids the crash-consistency promise (the blocks
    are gone and the stack said so); it is always reported as a
    ``death:`` violation so a second-failure-during-rebuild cell can
    never silently pass."""
    deaths = [device for device in world.devices if device.dead]
    volume = world.volume
    if not deaths and volume is None:
        return
    if not deaths and not (volume.degraded or volume.mttr_samples):
        return
    info = {
        "devices_dead": [device.name for device in deaths],
        "first_death_s": None,
        "members_dead": 0,
        "degraded": False,
        "degraded_seconds": 0.0,
        "rebuilds_started": 0,
        "rebuilds_completed": 0,
        "blocks_copied": 0,
        "rebuild_remaining": 0,
        "rebuild_mttr_s": None,
        "data_loss_blocks": 0,
    }
    death_times = [device.died_at for device in deaths
                   if device.died_at is not None]
    if death_times:
        info["first_death_s"] = min(death_times)
    if volume is not None:
        window = volume.degraded_seconds
        if volume.degraded_since is not None:
            window += world.sim.now - volume.degraded_since
        info.update(
            members_dead=volume.members_dead(),
            degraded=volume.degraded,
            degraded_seconds=window,
            rebuilds_started=volume.failover["rebuilds_started"],
            rebuilds_completed=volume.failover["rebuilds_completed"],
            blocks_copied=volume.failover["blocks_copied"],
            rebuild_remaining=volume.rebuild_remaining(),
            rebuild_mttr_s=(volume.mttr_samples[0]
                            if volume.mttr_samples else None),
            data_loss_blocks=len(volume._lost))
        if volume._lost:
            result.expected_clean = False
            result.violations.append(
                "death:data-loss-detected:blocks=%d" % len(volume._lost))
        elif (deaths and world.rebuilder is not None
                and info["rebuilds_started"]
                and info["rebuilds_completed"]
                < info["rebuilds_started"]):
            result.violations.append(
                "death:rebuild-incomplete:remaining=%d"
                % info["rebuild_remaining"])
    result.failover = info


def _crash_checkable(world):
    """Can the post-stream crash/recovery safety check run at all?

    A fail-stopped log device, a dead unreplicated data path, or a
    mirror with no fully-populated surviving member cannot recover —
    the failover verdict (not the crash check) is the report for those
    worlds."""
    if world.log_device.dead:
        return False
    volume = world.volume
    if volume is not None:
        return any(not dead and not missing
                   for dead, missing in zip(volume._dead, volume._missing))
    return not any(device.dead for device in world.data_devices)


def run_chaos(scenario, ops=None, telemetry=None, baseline=None,
              crash_check=True, expect_read_only=None, monitor=True,
              metrics_interval=None):
    """One chaos run: liveness, then safety, then bounded degradation.

    ``baseline`` is the fault-free completion time (computed on demand
    when omitted and a bound applies).  ``expect_read_only`` overrides
    the default expectation (permanent-hang profiles must demote).
    With ``monitor`` on (and no caller-supplied ``telemetry``), the run
    collects windowed metrics and reports the SLO monitor's verdict —
    fired alerts and gray-failure detection latency.  Returns a
    :class:`ChaosResult`.
    """
    if ops is None:
        ops = generate_ops(scenario)
    profile = scenario.gray_profile or GrayFaultProfile()
    if expect_read_only is None:
        expect_read_only = bool(profile.hang_at is not None
                                and profile.hang_permanent)
    result = ChaosResult(scenario)
    result.ops_total = len(ops)
    own_hub = telemetry is None and monitor
    if own_hub:
        # Spans stay off; only the windowed metric collector runs.  The
        # hub must not leak into baseline_duration below — a hub binds
        # to exactly one simulator.
        telemetry = Telemetry(enabled=False, metrics=MetricsRegistry(
            interval=metrics_interval or CHAOS_METRICS_INTERVAL))
    world = build_world(scenario, telemetry)
    sim = world.sim
    result.expected_clean = world.expected_clean
    result.integrity_expected = world.integrity_expected
    progress = {"completed": 0}
    outcomes = {"ok": 0, "timed_out": 0, "rejected": 0}
    client = sim.process(
        _chaos_client(world.workload, ops, progress, outcomes))
    watchdog = sim.timeout(horizon_guard(scenario, ops))
    with sim.telemetry.span("chaos.run", "failures",
                            device=scenario.device,
                            ops=len(ops)) as span:
        sim.run_until(sim.any_of([client, watchdog]))
        world.engine.stop_cleaner()
        result.ops_ok = outcomes["ok"]
        result.ops_timed_out = outcomes["timed_out"]
        result.ops_rejected = outcomes["rejected"]
        result.ops_failed_hard = outcomes.get("dead", 0)
        result.ops_corrupt_detected = outcomes.get("corrupt", 0)
        result.undetected_corrupt_reads = \
            check_undetected_corruption(world.audit)
        if result.undetected_corrupt_reads:
            result.violations.append(
                "integrity:undetected-corrupt-read:count=%d"
                % result.undetected_corrupt_reads)
        result.completed = client.triggered
        result.duration = sim.now
        result.read_only = getattr(world.engine, "degradation",
                                   None) is not None \
            and world.engine.degradation.read_only
        result.host_counters = {
            "data": world.engine.data_fs.lifecycle_counters(),
            "log": world.engine.log_fs.lifecycle_counters(),
        }
        result.gray_counters = _merge_gray_counters(world)
        result.db_counters = dict(
            world.engine.degradation.counters) \
            if getattr(world.engine, "degradation", None) else {}
        if not result.completed:
            # Stuck behind the watchdog: a liveness violation however
            # the configuration is classified — the whole point of the
            # tolerance stack is that nothing hangs forever.
            result.expected_clean = True
            result.violations.append(
                "liveness:stuck-at-op-%d" % progress["completed"])
            _evaluate_slo(world, scenario, profile, result)
            _evaluate_failover(world, scenario, result)
            span.annotate(stuck=True)
            return result
        _drain_rebuild(world)
        _evaluate_slo(world, scenario, profile, result)
        _evaluate_failover(world, scenario, result)
        if expect_read_only and not result.read_only:
            result.violations.append(
                "degrade:no-readonly-demotion:escalations=%d"
                % result.db_counters.get("escalations", -1))
        # Bounded degradation (curable profiles only; a permanent hang
        # has no meaningful completion-time bound).
        bound = profile.degradation_bound
        if bound is None:
            bound = DEFAULT_DEGRADATION_BOUND
        if not profile.quiet and bound != math.inf:
            if baseline is None:
                baseline = baseline_duration(
                    scenario, ops, None if own_hub else telemetry)
            result.baseline_duration = baseline
            result.degradation_ratio = (result.duration / baseline
                                        if baseline else None)
            if result.degradation_ratio is not None \
                    and result.degradation_ratio > bound:
                result.violations.append(
                    "degradation:%.2fx>bound-%.2fx"
                    % (result.degradation_ratio, bound))
        if crash_check and _crash_checkable(world):
            _crash_and_check(world, result)
        span.annotate(violations=len(result.violations))
    return result


def _crash_and_check(world, result):
    """Cut power after the stream, recover, check every invariant.

    This is the safety half: whatever aborts, resets and retries
    happened mid-run, the acked state must survive a crash exactly as
    it would have without gray faults.
    """
    sim = world.sim
    injector = PowerFailureInjector(sim, world.devices)
    injector.execute_cut()
    injector.reboot_all()
    for device in world.devices:
        report = check_device(device)
        inversions = check_write_order(device)
        # An armed corruption model deliberately violates block-level
        # durability beneath the FTL; the integrity verdicts higher in
        # the stack take over for those devices.
        if device.claims_durable_cache and device.corruption is None:
            for violation in report.violations:
                result.violations.append(
                    "device:%s:%s:lba=%d" % (device.name, violation.kind,
                                             violation.lba))
            for missing, present in inversions:
                result.violations.append(
                    "device:%s:reorder:%d>%d" % (device.name, missing,
                                                 present))
    durable_log = world.log_device.claims_durable_cache
    report = dbrecovery.recover(world.engine, durable_log)
    dbrecovery.check_consistency(world.engine, report)
    for txn_id in report.lost_committed_txns:
        result.violations.append("db:lost-txn:%s" % (txn_id,))
    for key in report.torn_unrepairable:
        result.violations.append("db:torn-page:%s" % (key,))
    for kind, key, found, want in report.consistency_violations:
        result.violations.append(
            "db:%s:%s:found=%s:want=%s" % (kind, key, found, want))


def make_chaos_artifact(scenario, ops, result):
    """A self-contained, replayable description of one chaos failure."""
    return {
        "format": CHAOS_ARTIFACT_FORMAT,
        "scenario": scenario.to_json(),
        "ops": [[name, node] for name, node in ops],
        "violations": list(result.violations),
        "result": result.to_json(),
    }


def replay_artifact(artifact, telemetry=None):
    """Re-run a minimized chaos repro from its JSON alone."""
    if isinstance(artifact, (str, bytes)):
        artifact = json.loads(artifact)
    if artifact.get("format") != CHAOS_ARTIFACT_FORMAT:
        raise ValueError("not a chaos artifact: %r"
                         % (artifact.get("format"),))
    scenario = TortureScenario.from_json(artifact["scenario"])
    ops = [(name, node) for name, node in artifact["ops"]]
    return run_chaos(scenario, ops, telemetry=telemetry)


def minimize_chaos(scenario, ops, predicate=None, telemetry=None):
    """Shrink a violating run to its shortest failing operation prefix.

    Returns a replayable artifact dict, or ``None`` when not even the
    full stream violates.  ``predicate`` defaults to "any violation".
    """
    if predicate is None:
        predicate = lambda result: not result.clean

    def prefix_violation(length):
        prefix = ops[:length]
        result = run_chaos(scenario, prefix, telemetry=telemetry)
        return result if predicate(result) else None

    full = prefix_violation(len(ops))
    if full is None:
        return None
    low, high = 1, len(ops)
    best = (len(ops), full)
    while low < high:
        middle = (low + high) // 2
        found = prefix_violation(middle)
        if found is not None:
            best = (middle, found)
            high = middle
        else:
            low = middle + 1
    length, result = best
    return make_chaos_artifact(scenario, ops[:length], result)
