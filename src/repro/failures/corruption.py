"""Silent-corruption fault model: bit rot, read disturb, misdirected
and lost writes, injected beneath the FTL.

The power-cut torture harness and the gray-failure chaos harness both
assume reads are *faithful*: whatever the media holds comes back
unaltered.  Real flash breaks that assumption silently — retention
decay and read disturb degrade programmed pages at rest, and firmware
bugs land a write at the wrong address (*misdirected*) or ack it
without persisting anything (*lost*).  None of these trips a timeout
or an error status; only an integrity check (checksums, mirrors, a
scrubber) can catch them.

The model is seeded and deterministic, mirroring
:class:`~repro.failures.faults.TransientFaultModel`: the same
:class:`CorruptionConfig` produces the same corruption schedule, which
the torture and chaos harnesses rely on for replayable artifacts.  One
Bernoulli partition per committed host write decides its fate (clean /
lost / misdirected / rotten), and one draw per host read decides
whether the read disturbs its page.  The fault vocabulary is the shared
taxonomy of :mod:`repro.flash.torn` — torture, chaos and this injector
all speak the same kinds.

:attr:`CorruptionModel.first_fault_time` records when the first fault
actually materialised, which is what chaos verdicts subtract from the
first SLO alert to report corruption-detection latency, exactly like
gray-fault detection.
"""

from ..flash.torn import (
    BIT_ROT,
    LOST_WRITE,
    MISDIRECTED_WRITE,
    READ_DISTURB,
)
from ..sim.rng import make_rng


class CorruptionConfig:
    """Seeded per-operation rates for the silent-corruption model.

    Rates are probabilities per committed host write (``lost_rate``,
    ``misdirected_rate``, ``bit_rot_rate``) or per host read
    (``read_disturb_rate``).  Their write-side sum must stay below 1 —
    they partition one uniform draw.
    """

    def __init__(self, seed=0, bit_rot_rate=0.0, read_disturb_rate=0.0,
                 misdirected_rate=0.0, lost_rate=0.0):
        for name, rate in (("bit_rot_rate", bit_rot_rate),
                           ("read_disturb_rate", read_disturb_rate),
                           ("misdirected_rate", misdirected_rate),
                           ("lost_rate", lost_rate)):
            if not 0.0 <= rate < 1.0:
                raise ValueError("%s must be in [0, 1): %r" % (name, rate))
        if lost_rate + misdirected_rate + bit_rot_rate >= 1.0:
            raise ValueError("write-side rates must sum below 1")
        self.seed = seed
        self.bit_rot_rate = bit_rot_rate
        self.read_disturb_rate = read_disturb_rate
        self.misdirected_rate = misdirected_rate
        self.lost_rate = lost_rate

    @property
    def quiet(self):
        """True when no fault can ever fire (a corruption-free config)."""
        return not (self.bit_rot_rate or self.read_disturb_rate
                    or self.misdirected_rate or self.lost_rate)

    def to_json(self):
        return {
            "seed": self.seed,
            "bit_rot_rate": self.bit_rot_rate,
            "read_disturb_rate": self.read_disturb_rate,
            "misdirected_rate": self.misdirected_rate,
            "lost_rate": self.lost_rate,
        }

    @classmethod
    def from_json(cls, data):
        return cls(**data)


#: named corruption profiles for the torture/chaos CLIs; rates are per
#: committed write (or per read for read disturb), high enough that the
#: short seeded sweeps hit every kind while most blocks stay clean.
CORRUPTION_PROFILES = {
    "bit-rot": dict(bit_rot_rate=0.03),
    "read-disturb": dict(read_disturb_rate=0.03),
    "misdirected": dict(misdirected_rate=0.02),
    "lost-write": dict(lost_rate=0.02),
    "corruption-mix": dict(bit_rot_rate=0.01, read_disturb_rate=0.01,
                           misdirected_rate=0.008, lost_rate=0.008),
}


def make_corruption_profile(name, seed=0):
    """A :class:`CorruptionConfig` for a named profile."""
    if name not in CORRUPTION_PROFILES:
        raise ValueError("unknown corruption profile %r (choices: %s)"
                         % (name, ", ".join(sorted(CORRUPTION_PROFILES))))
    return CorruptionConfig(seed=seed, **CORRUPTION_PROFILES[name])


class CorruptionModel:
    """Deterministic corruption oracle for one device's FTL.

    Attach with :meth:`repro.devices.ssd.FlashSSD.inject_corruption`;
    the FTL then consults :meth:`write_outcome` for every committed
    host write and :meth:`read_disturbs` for every host read.  ``salt``
    keeps same-config models on different devices on independent
    streams (so mirror replicas do not rot in lockstep — the whole
    point of keeping a second copy).
    """

    def __init__(self, config=None, salt=""):
        self.config = config or CorruptionConfig()
        self.salt = salt
        self._rng = make_rng(("silent-corruption", salt, self.config.seed))
        self.counters = {BIT_ROT: 0, READ_DISTURB: 0,
                         MISDIRECTED_WRITE: 0, LOST_WRITE: 0}
        #: simulated time of the first materialised fault, or None
        self.first_fault_time = None

    @property
    def injected_faults(self):
        return sum(self.counters.values())

    def _mark(self, now, kind):
        self.counters[kind] += 1
        if self.first_fault_time is None:
            self.first_fault_time = now

    def write_outcome(self, now, lslot):
        """The fate of one committed host write: a fault kind or None.

        One uniform draw partitioned lost / misdirected / rotten /
        clean, so arming any single rate never perturbs the schedule of
        the others.
        """
        config = self.config
        if not (config.lost_rate or config.misdirected_rate
                or config.bit_rot_rate):
            return None
        draw = self._rng.random()
        if draw < config.lost_rate:
            self._mark(now, LOST_WRITE)
            return LOST_WRITE
        draw -= config.lost_rate
        if draw < config.misdirected_rate:
            self._mark(now, MISDIRECTED_WRITE)
            return MISDIRECTED_WRITE
        draw -= config.misdirected_rate
        if draw < config.bit_rot_rate:
            self._mark(now, BIT_ROT)
            return BIT_ROT
        return None

    def misdirect_target(self, lslot, exported_slots):
        """The aliased logical slot a misdirected write lands on."""
        if exported_slots <= 1:
            return lslot
        alias = self._rng.randrange(exported_slots - 1)
        return alias + 1 if alias >= lslot else alias

    def read_disturbs(self, now):
        """Whether this host read degrades the page it touched."""
        if self.config.read_disturb_rate <= 0.0:
            return False
        if self._rng.random() < self.config.read_disturb_rate:
            self._mark(now, READ_DISTURB)
            return True
        return False
