"""Crash-consistency torture harness.

Systematically answers the paper's central claim — *a DuraSSD needs no
write barriers to be crash-safe* — by construction rather than by
argument:

1. **Record**: run a deterministic, seeded LinkBench operation stream
   against a freshly built world (engine + devices) and collect every
   ack boundary the devices reported.
2. **Sweep**: for each candidate cut point (the midpoints between
   consecutive distinct ack instants, plus one before the first and one
   after the last), rebuild the *identical* world, replay the same
   operation stream, cut power there, reboot, run device and database
   recovery, and check both block-level invariants
   (:mod:`repro.failures.checker`) and the transaction oracle
   (:mod:`repro.db.dbrecovery`).  Short runs sweep exhaustively; long
   ones take a seeded sample and refine failures by bisection.
   Selected trials additionally inject a *nested* cut in the middle of
   recovery — either interrupting the DuraSSD dump replay or the
   database redo pass — and recover again.
3. **Minimize**: a failing schedule is reduced to the shortest
   operation prefix plus the earliest failing cut point, and emitted as
   a self-contained JSON artifact that :func:`replay_artifact`
   reproduces with no other inputs.

The verdict policy keys on ``StorageDevice.claims_durable_cache``: a
device claiming a durable cache must check clean at block level at
*every* cut point, and a configuration that promises durability (a
durable cache, or barriers on) must recover a consistent database.
Configurations that promise nothing (volatile cache, barriers off) are
still swept — their violations are what the paper's Table 1 anomaly
discussion is about — but they do not fail the sweep.
"""

import json

from ..db import dbrecovery
from ..db.commercial import CommercialConfig, CommercialEngine
from ..db.degrade import DegradedError
from ..db.innodb import InnoDBConfig, InnoDBEngine
from ..db.pages import TornPageError
from ..devices import make_durassd, make_hdd, make_ssd_a, make_ssd_b
from ..host import (
    FileSystem,
    MirroredVolume,
    Rebuilder,
    Scrubber,
    StripedVolume,
    VerifyingTarget,
    as_target,
)
from ..host.integrity import CorruptDataError
from ..host.lifecycle import TimeoutPolicy
from ..host.queues import INTERFACES, QueueTopology
from ..sim import Simulator, units
from ..sim.rng import make_rng
from ..workloads.linkbench import (
    OPERATION_MIX,
    LinkBenchConfig,
    LinkBenchWorkload,
    NodeSampler,
)
from .checker import (
    check_device,
    check_undetected_corruption,
    check_write_order,
)
from .corruption import CorruptionConfig, CorruptionModel
from .death import DeviceDeathModel, DeviceDeathSchedule
from .faults import FaultConfig, TransientFaultModel
from .grayfaults import GrayFaultModel, GrayFaultProfile
from .injector import PowerFailureInjector

ARTIFACT_FORMAT = "repro.torture/1"

#: Offset past the final ack for the "after everything was acked" cut.
_AFTER_LAST_ACK = 1e-7

_DEVICE_MAKERS = {
    "hdd": make_hdd,
    "ssd-a": make_ssd_a,
    "ssd-b": make_ssd_b,
    "durassd": make_durassd,
}

_ENGINES = ("innodb", "commercial")


class TortureScenario:
    """A fully seeded, JSON-serializable description of one torture world.

    Everything a trial needs is here (plus the operation list, which
    :func:`generate_ops` derives deterministically from the seed), so a
    failure reproduces from the serialized scenario alone.
    """

    def __init__(self, engine="innodb", device="durassd", barriers=None,
                 doublewrite=True, ops=200, seed=11,
                 db_bytes=2 * units.MIB, page_size=16 * units.KIB,
                 buffer_pool_bytes=None, fault_config=None,
                 capacitor_health=1.0, workload="linkbench",
                 timeout_policy=None, gray_profile=None,
                 gray_target="both", admission_control=False, stripe=1,
                 corruption=None, corruption_target="data", mirror=1,
                 checksums=False, scrub=False, death=None,
                 death_target="data", spares=0, rebuild_pace=None,
                 interface="sata", submission_queues=2):
        if engine not in _ENGINES:
            raise ValueError("unknown engine: %r" % engine)
        if device not in _DEVICE_MAKERS:
            raise ValueError("unknown device: %r" % device)
        if workload != "linkbench":
            raise ValueError("unknown workload: %r" % workload)
        if ops < 1:
            raise ValueError("ops must be >= 1")
        if engine == "commercial":
            doublewrite = False  # the commercial engine has no DWB
        self.engine = engine
        self.device = device
        #: None = auto: off when every device claims a durable cache
        #: (the paper's DuraSSD configuration), on otherwise.
        self.barriers = barriers
        self.doublewrite = doublewrite
        self.ops = ops
        self.seed = seed
        self.db_bytes = db_bytes
        self.page_size = page_size
        self.buffer_pool_bytes = (buffer_pool_bytes if buffer_pool_bytes
                                  else max(16 * page_size, db_bytes // 4))
        if fault_config is not None and not isinstance(fault_config,
                                                       FaultConfig):
            fault_config = FaultConfig(**fault_config)
        self.fault_config = fault_config
        if not 0.0 <= capacitor_health <= 1.0:
            raise ValueError("capacitor_health must be in [0, 1]")
        self.capacitor_health = capacitor_health
        self.workload = workload
        # Gray-failure wiring (repro.failures.grayfaults): all None/off
        # by default, so classic torture scenarios are untouched.
        if timeout_policy is not None and not isinstance(timeout_policy,
                                                         TimeoutPolicy):
            timeout_policy = TimeoutPolicy(**timeout_policy)
        self.timeout_policy = timeout_policy
        if gray_profile is not None and not isinstance(gray_profile,
                                                       GrayFaultProfile):
            gray_profile = GrayFaultProfile(**gray_profile)
        self.gray_profile = gray_profile
        stripe = int(stripe)
        if stripe < 1:
            raise ValueError("stripe width must be >= 1")
        self.stripe = stripe
        # "data:<i>" targets gray faults at one stripe member only.
        if gray_target.startswith("data:"):
            member = int(gray_target.split(":", 1)[1])
            if not 0 <= member < stripe:
                raise ValueError("gray_target member %d outside stripe "
                                 "width %d" % (member, stripe))
        elif gray_target not in ("both", "data", "log"):
            raise ValueError("gray_target must be both, data, log or "
                             "data:<member>: %r" % (gray_target,))
        self.gray_target = gray_target
        self.admission_control = admission_control
        # End-to-end integrity wiring (repro.failures.corruption,
        # repro.host.integrity): all off by default, so classic torture
        # scenarios build byte-identical worlds.
        if corruption is not None and not isinstance(corruption,
                                                     CorruptionConfig):
            corruption = CorruptionConfig(**corruption)
        self.corruption = corruption
        if corruption_target not in ("data", "log", "all"):
            raise ValueError("corruption_target must be data, log or all: "
                             "%r" % (corruption_target,))
        self.corruption_target = corruption_target
        mirror = int(mirror)
        if mirror < 1:
            raise ValueError("mirror width must be >= 1")
        if mirror > 1 and stripe > 1:
            raise ValueError("mirror and stripe are mutually exclusive")
        self.mirror = mirror
        self.checksums = bool(checksums)
        if scrub and not (self.checksums or mirror > 1):
            raise ValueError("scrub needs checksums or a mirror to verify "
                             "against")
        self.scrub = bool(scrub)
        # Fail-stop device deaths and online repair (repro.failures.death,
        # repro.host.volume.Rebuilder): all off by default.
        if death is not None and not isinstance(death, DeviceDeathSchedule):
            death = DeviceDeathSchedule(**death)
        self.death = death
        width = max(stripe, mirror)
        if death_target.startswith("data:"):
            member = int(death_target.split(":", 1)[1])
            if not 0 <= member < width:
                raise ValueError("death_target member %d outside width %d"
                                 % (member, width))
        elif death_target not in ("data", "log", "all"):
            raise ValueError("death_target must be data, log, all or "
                             "data:<member>: %r" % (death_target,))
        self.death_target = death_target
        spares = int(spares)
        if spares < 0:
            raise ValueError("spares must be >= 0")
        if spares and mirror <= 1:
            raise ValueError("hot spares need a mirror to rebuild")
        self.spares = spares
        if rebuild_pace is not None and rebuild_pace <= 0:
            raise ValueError("rebuild_pace must be > 0")
        self.rebuild_pace = rebuild_pace
        # Host queue model (repro.host.queues): the default SATA NCQ
        # builds byte-identical classic worlds; "nvme" runs every
        # queue-owning target behind a multi-queue model instead.
        if interface not in INTERFACES:
            raise ValueError("interface must be one of %s" % (INTERFACES,))
        self.interface = interface
        submission_queues = int(submission_queues)
        if submission_queues < 1:
            raise ValueError("submission_queues must be >= 1")
        self.submission_queues = submission_queues

    @property
    def integrity_armed(self):
        """Does this world defend reads (checksums and/or a mirror)?"""
        return self.checksums or self.mirror > 1

    def to_json(self):
        return {
            "engine": self.engine,
            "device": self.device,
            "barriers": self.barriers,
            "doublewrite": self.doublewrite,
            "ops": self.ops,
            "seed": self.seed,
            "db_bytes": self.db_bytes,
            "page_size": self.page_size,
            "buffer_pool_bytes": self.buffer_pool_bytes,
            "fault_config": (self.fault_config.to_json()
                             if self.fault_config else None),
            "capacitor_health": self.capacitor_health,
            "workload": self.workload,
            "timeout_policy": (self.timeout_policy.to_json()
                               if self.timeout_policy else None),
            "gray_profile": (self.gray_profile.to_json()
                             if self.gray_profile else None),
            "gray_target": self.gray_target,
            "admission_control": self.admission_control,
            "stripe": self.stripe,
            "corruption": (self.corruption.to_json()
                           if self.corruption else None),
            "corruption_target": self.corruption_target,
            "mirror": self.mirror,
            "checksums": self.checksums,
            "scrub": self.scrub,
            "death": self.death.to_json() if self.death else None,
            "death_target": self.death_target,
            "spares": self.spares,
            "rebuild_pace": self.rebuild_pace,
            "interface": self.interface,
            "submission_queues": self.submission_queues,
        }

    @classmethod
    def from_json(cls, data):
        return cls(**data)

    def __repr__(self):
        return ("<TortureScenario %s/%s barriers=%r ops=%d seed=%d>"
                % (self.engine, self.device, self.barriers, self.ops,
                   self.seed))


class TortureWorld:
    """One freshly built simulation world for a single trial."""

    def __init__(self, sim, engine, devices, workload, barriers,
                 expected_clean, data_devices=None, audit=None,
                 scrubber=None, integrity_expected=False, volume=None,
                 rebuilder=None, spare_devices=()):
        self.sim = sim
        self.engine = engine
        self.devices = devices
        #: the data-target members (one for an unstriped world)
        self.data_devices = (tuple(data_devices) if data_devices
                             else (devices[0],))
        self.data_device = self.data_devices[0]
        self.log_device = devices[-1]
        self.workload = workload
        self.barriers = barriers
        self.expected_clean = expected_clean
        #: passive undetected-corruption auditor (corruption worlds only)
        self.audit = audit
        #: background media scrubber, when the scenario arms one
        self.scrubber = scrubber
        #: does this world promise detection (checksums or mirror)?
        self.integrity_expected = integrity_expected
        #: the striped/mirrored data volume, when the world has one
        self.volume = volume
        #: background online rebuilder, when hot spares are pooled
        self.rebuilder = rebuilder
        #: unattached hot-spare devices (they join via the rebuilder)
        self.spare_devices = tuple(spare_devices)


def build_world(scenario, telemetry=None):
    """Construct the scenario's world from scratch; deterministic."""
    sim = Simulator(telemetry)
    maker = _DEVICE_MAKERS[scenario.device]
    data_capacity = max(32 * units.MIB, scenario.db_bytes * 8)
    log_capacity = max(16 * units.MIB, scenario.db_bytes * 2)
    if scenario.stripe > 1:
        member_capacity = -(-data_capacity // scenario.stripe)
        data_devices = tuple(
            maker(sim, capacity_bytes=member_capacity,
                  name="%s.d%d" % (scenario.device, index))
            for index in range(scenario.stripe))
    elif scenario.mirror > 1:
        data_devices = tuple(
            maker(sim, capacity_bytes=data_capacity,
                  name="%s.m%d" % (scenario.device, index))
            for index in range(scenario.mirror))
    else:
        data_devices = (maker(sim, capacity_bytes=data_capacity),)
    log_device = maker(sim, capacity_bytes=log_capacity)
    spare_devices = tuple(
        maker(sim, capacity_bytes=data_capacity,
              name="%s.s%d" % (scenario.device, index))
        for index in range(scenario.spares))
    # Spares sit between the data members and the log so devices[-1]
    # stays the log device everywhere downstream.
    devices = data_devices + spare_devices + (log_device,)
    for device in devices:
        if scenario.fault_config is not None and \
                hasattr(device, "inject_faults"):
            device.inject_faults(TransientFaultModel(scenario.fault_config))
        if scenario.capacitor_health < 1.0 and \
                hasattr(device, "set_capacitor_health"):
            device.set_capacitor_health(scenario.capacitor_health)
    if scenario.gray_profile is not None:
        if scenario.gray_target.startswith("data:"):
            member = int(scenario.gray_target.split(":", 1)[1])
            data_devices[member].inject_gray_faults(
                GrayFaultModel(scenario.gray_profile,
                               salt="data:%d" % member))
        elif scenario.gray_target in ("both", "data"):
            for index, device in enumerate(data_devices):
                salt = "data" if index == 0 else "data:%d" % index
                device.inject_gray_faults(
                    GrayFaultModel(scenario.gray_profile, salt=salt))
        if scenario.gray_target in ("both", "log"):
            log_device.inject_gray_faults(
                GrayFaultModel(scenario.gray_profile, salt="log"))
    if scenario.corruption is not None:
        # Silent-corruption models beneath the FTL, one per device with
        # its own salt so replicas never rot in lock-step.
        if scenario.corruption_target in ("data", "all"):
            for index, device in enumerate(data_devices):
                if hasattr(device, "inject_corruption"):
                    device.inject_corruption(CorruptionModel(
                        scenario.corruption, salt="data:%d" % index))
        if scenario.corruption_target in ("log", "all") \
                and hasattr(log_device, "inject_corruption"):
            log_device.inject_corruption(CorruptionModel(
                scenario.corruption, salt="log"))
    if scenario.death is not None and not scenario.death.quiet:
        # Fail-stop death models; ``index`` orders staggered deaths so a
        # double-death profile kills members one after the other.
        if scenario.death_target.startswith("data:"):
            member = int(scenario.death_target.split(":", 1)[1])
            data_devices[member].inject_death(DeviceDeathModel(
                scenario.death, salt="data:%d" % member, index=0))
        elif scenario.death_target in ("data", "all"):
            for index, device in enumerate(data_devices):
                device.inject_death(DeviceDeathModel(
                    scenario.death, salt="data:%d" % index, index=index))
        if scenario.death_target in ("log", "all"):
            log_device.inject_death(DeviceDeathModel(
                scenario.death, salt="log", index=len(data_devices)))
    all_durable = all(device.claims_durable_cache for device in devices)
    barriers = (not all_durable) if scenario.barriers is None \
        else scenario.barriers
    # None = the legacy SATA construction path, byte-identical to every
    # committed torture artifact; the NVMe topology routes the log
    # stream to its last submission queue like the bench worlds do.
    queue_model = None
    if scenario.interface == "nvme":
        queues = scenario.submission_queues
        queue_model = QueueTopology(
            interface="nvme", submission_queues=queues,
            affinity={"log": queues - 1} if queues > 1 else None)
    volume = None
    if scenario.stripe > 1:
        data_target = StripedVolume(sim, data_devices,
                                    timeout_policy=scenario.timeout_policy,
                                    queue_model=queue_model)
    elif scenario.mirror > 1:
        volume = MirroredVolume(sim, data_devices,
                                timeout_policy=scenario.timeout_policy,
                                queue_model=queue_model)
        data_target = volume
    else:
        data_target = data_devices[0]
    if scenario.checksums and scenario.mirror <= 1:
        # Unreplicated defense: fingerprint writes, fail-stop bad reads.
        data_target = VerifyingTarget(as_target(
            sim, data_target, timeout_policy=scenario.timeout_policy,
            queue_model=queue_model))
    defended_target = data_target
    audit = None
    if scenario.corruption is not None:
        # Harness-side oracle OUTSIDE any defense: a corrupt value that
        # makes it past this point was served to the host undetected.
        audit = VerifyingTarget(as_target(
            sim, data_target, timeout_policy=scenario.timeout_policy,
            queue_model=queue_model),
            fail_stop=False)
        data_target = audit
    data_fs = FileSystem(sim, data_target, barriers=barriers,
                         timeout_policy=scenario.timeout_policy,
                         queue_model=queue_model)
    log_fs = FileSystem(sim, log_device, barriers=barriers,
                        timeout_policy=scenario.timeout_policy,
                        queue_model=queue_model)
    # Keep the WAL ring well inside the shrunken log device.
    log_ring = min(192 * units.MIB, log_capacity // 4)
    if scenario.engine == "commercial":
        config = CommercialConfig(page_size=scenario.page_size,
                                  buffer_pool_bytes=scenario.buffer_pool_bytes,
                                  log_capacity_bytes=log_ring)
        engine = CommercialEngine(sim, data_fs, log_fs, config)
    else:
        config = InnoDBConfig(page_size=scenario.page_size,
                              buffer_pool_bytes=scenario.buffer_pool_bytes,
                              doublewrite=scenario.doublewrite,
                              log_capacity_bytes=log_ring,
                              admission_control=scenario.admission_control)
        engine = InnoDBEngine(sim, data_fs, log_fs, config)
    for device in devices:
        device.record_acks = True
    if scenario.checksums:
        # Record-checksum verification of the redo log during recovery.
        engine.wal.verify_on_recovery = True
    degradation = getattr(engine, "degradation", None)
    scrubber = None
    if scenario.scrub:
        scrubber = Scrubber(
            sim, defended_target,
            escalate=(degradation.record_escalation
                      if degradation is not None else None))
        if volume is not None:
            # Repairs pause the scrubber; finished rebuilds hand it the
            # copied blocks for re-verification.
            volume.scrubber = scrubber
    rebuilder = None
    if volume is not None and spare_devices:
        rebuilder = Rebuilder(
            sim, volume, spares=list(spare_devices),
            pace=scenario.rebuild_pace or 5e-4,
            escalate=(degradation.record_escalation
                      if degradation is not None else None))
    lb_config = LinkBenchConfig(db_bytes=scenario.db_bytes,
                                seed=scenario.seed)
    workload = LinkBenchWorkload(engine, lb_config)
    # The promise under test: either every cache is durable (DuraSSD's
    # claim), or the host kept barriers on AND multi-block pages are
    # protected against tearing (double-write, or single-LBA pages —
    # only DuraSSD makes whole *commands* atomic).  Anything else
    # promises nothing, and its violations are findings, not failures.
    expected_clean = all_durable or (
        barriers and (scenario.doublewrite
                      or scenario.page_size <= units.LBA_SIZE))
    if scenario.corruption is not None and not scenario.corruption.quiet:
        # Silently rotting media voids the crash-consistency promise:
        # even a mirror loses data when both replicas of a block fault
        # (detected, fail-stop — but lost).  What an integrity-armed
        # world *does* promise is detection: any ``integrity:``
        # violation still fails the trial via ``integrity_expected``.
        expected_clean = False
    return TortureWorld(sim, engine, devices, workload, barriers,
                        expected_clean, data_devices=data_devices,
                        audit=audit, scrubber=scrubber,
                        integrity_expected=scenario.integrity_armed,
                        volume=volume, rebuilder=rebuilder,
                        spare_devices=spare_devices)


def generate_ops(scenario):
    """The scenario's deterministic (name, node) operation stream."""
    config = LinkBenchConfig(db_bytes=scenario.db_bytes, seed=scenario.seed)
    rng = make_rng(("torture-ops", scenario.seed))
    sampler = NodeSampler(config, rng)
    write_sampler = NodeSampler(config, rng, config.write_hot_fraction)
    names = [name for name, _w, _k in OPERATION_MIX]
    weights = [weight for _n, weight, _k in OPERATION_MIX]
    kinds = {name: kind for name, _w, kind in OPERATION_MIX}
    ops = []
    for _ in range(scenario.ops):
        name = rng.choices(names, weights=weights)[0]
        node = (write_sampler.next() if kinds[name] == "write"
                else sampler.next())
        ops.append((name, int(node)))
    return ops


def _client(workload, ops, progress):
    """Single sequential client replaying a pre-drawn operation list.

    Detected corruption (fail-stop checksum errors) and read-only
    rejections are tolerated and tallied — in an integrity world the
    *defense* turning a wrong answer into an error is the correct
    outcome, and the client must keep replaying the stream.  Classic
    worlds never raise either, so the handlers are inert there.
    """
    for index, (name, node) in enumerate(ops):
        try:
            yield from workload._operation(name, node)
        except (CorruptDataError, TornPageError):
            # Host checksum or database page checksum fired: the wrong
            # answer became an error.  Both are detection points in the
            # threat model.
            progress["corrupt_detected"] = \
                progress.get("corrupt_detected", 0) + 1
        except DegradedError:
            progress["rejected"] = progress.get("rejected", 0) + 1
        progress["completed"] = index + 1


class Recording:
    """Result of the record phase: cut candidates + determinism marks."""

    def __init__(self, ops, cut_candidates, ack_times, end_time,
                 processed_events):
        self.ops = ops
        self.cut_candidates = cut_candidates
        self.ack_times = ack_times
        self.end_time = end_time
        self.processed_events = processed_events

    def __repr__(self):
        return ("<Recording ops=%d candidates=%d events=%d>"
                % (len(self.ops), len(self.cut_candidates),
                   self.processed_events))


def record(scenario, ops=None, telemetry=None):
    """Run the full stream once, uncut, and derive the cut candidates.

    Candidates are the midpoints between consecutive *distinct* ack
    instants (cutting exactly at an ack time would be order-ambiguous:
    the injector's event sorts before same-instant acks), plus one
    point before the first ack and one just after the last.
    """
    if ops is None:
        ops = generate_ops(scenario)
    world = build_world(scenario, telemetry)
    progress = {"completed": 0}
    done = world.sim.process(_client(world.workload, ops, progress))
    world.sim.run_until(done)
    world.engine.stop_cleaner()
    ack_times = sorted({rec.time for device in world.devices
                        for rec in device.ack_log})
    candidates = []
    if ack_times:
        candidates.append(ack_times[0] * 0.5)
        for earlier, later in zip(ack_times, ack_times[1:]):
            candidates.append((earlier + later) / 2.0)
        candidates.append(ack_times[-1] + _AFTER_LAST_ACK)
    return Recording(ops, candidates, ack_times, world.sim.now,
                     world.sim.processed_events)


def verify_determinism(scenario, ops=None):
    """Record twice; identical worlds must yield identical fingerprints."""
    first = record(scenario, ops)
    second = record(scenario, ops)
    return (first.processed_events == second.processed_events
            and first.cut_candidates == second.cut_candidates
            and first.end_time == second.end_time)


class TrialResult:
    """One rebuilt world, one (possibly nested) cut, one verdict."""

    def __init__(self, cut_time, nested=None):
        self.cut_time = cut_time
        self.nested = nested
        self.fired = False
        self.nested_performed = False
        self.ops_completed = 0
        self.device_reports = {}
        self.order_inversions = {}
        self.db_report = None
        self.violations = []
        self.expected_clean = True
        self.integrity_expected = False
        self.undetected_corrupt_reads = 0
        self.corrupt_detected = 0
        self.recovery_seconds = 0.0

    @property
    def clean(self):
        return not self.violations

    @property
    def failed(self):
        """A violation where the configuration promised none.

        An integrity-armed world additionally fails on any
        ``integrity:`` violation even when silent corruption voided the
        crash-consistency promise — checksums promise *detection*
        regardless of whether the data can be recovered.
        """
        if self.expected_clean and self.violations:
            return True
        return self.integrity_expected and any(
            violation.startswith("integrity:")
            for violation in self.violations)

    def to_json(self):
        return {
            "cut_time": self.cut_time,
            "nested": list(self.nested) if self.nested else None,
            "fired": self.fired,
            "nested_performed": self.nested_performed,
            "ops_completed": self.ops_completed,
            "expected_clean": self.expected_clean,
            "integrity_expected": self.integrity_expected,
            "undetected_corrupt_reads": self.undetected_corrupt_reads,
            "corrupt_detected": self.corrupt_detected,
            "violations": list(self.violations),
            "recovery_seconds": self.recovery_seconds,
        }

    def __repr__(self):
        return ("<TrialResult cut=%.6f fired=%r nested=%r violations=%d>"
                % (self.cut_time, self.fired, self.nested,
                   len(self.violations)))


def _recover_devices(world, injector, nested, result):
    """Reboot every device; optionally interrupt a dump replay mid-way
    with a second power cut, then recover in full."""
    total = 0.0
    if nested and nested[0] == "device-recovery":
        budget = nested[1]
        for device in world.devices:
            manager = getattr(device, "recovery_manager", None)
            if manager is not None and manager.needs_recovery():
                total += device.reboot(interrupt_recovery_after=budget)
                if manager.needs_recovery():
                    # The replay was cut short: power-cycle again.  The
                    # dump image survived (merged), so the second replay
                    # recovers everything.
                    result.nested_performed = True
                    device.power_fail()
                    total += device.reboot()
            else:
                total += device.reboot()
        injector.cancel_pending_cuts()
    else:
        for seconds in injector.reboot_all().values():
            total += seconds
    return total


def run_trial(scenario, ops, cut_time, nested=None, telemetry=None):
    """Rebuild the world, replay ``ops``, cut at ``cut_time``, recover,
    and check every invariant.

    ``nested`` is ``None``, ``("device-recovery", k)`` (cut again after
    ``k`` replayed dump items) or ``("db-recovery", k)`` (cut again
    after ``k`` recovery page installs).
    """
    world = build_world(scenario, telemetry)
    sim = world.sim
    injector = PowerFailureInjector(sim, world.devices)
    progress = {"completed": 0}
    done = sim.process(_client(world.workload, ops, progress))
    cut = injector.schedule_cut(cut_time)
    result = TrialResult(cut_time, nested)
    result.expected_clean = world.expected_clean
    result.integrity_expected = world.integrity_expected
    with sim.telemetry.span("torture.trial", "failures",
                            device=scenario.device, engine=scenario.engine,
                            cut_time=cut_time) as span:
        sim.run_until(done)
        result.fired = cut.fired
        result.ops_completed = progress["completed"]
        result.corrupt_detected = progress.get("corrupt_detected", 0)
        # The integrity safety verdict holds at *every* instant, cut or
        # no cut: no acked read returned corrupted data undetected.
        result.undetected_corrupt_reads = \
            check_undetected_corruption(world.audit)
        if result.undetected_corrupt_reads:
            result.violations.append(
                "integrity:undetected-corrupt-read:count=%d"
                % result.undetected_corrupt_reads)
        if not cut.fired:
            # The stream finished before the cut: nothing else to check.
            span.annotate(fired=False)
            world.engine.stop_cleaner()
            return result
        world.engine.stop_cleaner()
        sim.telemetry.instant("torture.cut", "failures",
                              at=sim.now, ops_completed=result.ops_completed)
        with sim.telemetry.span("torture.device_recovery", "failures",
                                nested=bool(nested)):
            result.recovery_seconds = _recover_devices(world, injector,
                                                       nested, result)
        # Block-level invariants, checked *before* database recovery can
        # repair (and thereby mask) device-level anomalies.
        for device in world.devices:
            report = check_device(device)
            inversions = check_write_order(device)
            result.device_reports[device.name] = report
            result.order_inversions[device.name] = inversions
            # A device with an armed corruption model deliberately
            # violates block-level durability — that is the injection,
            # not a finding.  The verdict moves up the stack: the
            # volume/database layers must detect (and, mirrored,
            # repair) it, which the integrity checks above assert.
            if device.claims_durable_cache and device.corruption is None:
                for violation in report.violations:
                    result.violations.append(
                        "device:%s:%s:lba=%d" % (device.name, violation.kind,
                                                 violation.lba))
                for missing, present in inversions:
                    result.violations.append(
                        "device:%s:reorder:%d>%d" % (device.name, missing,
                                                     present))
        # Database recovery, optionally crashed in the middle and re-run.
        durable_log = world.log_device.claims_durable_cache
        with sim.telemetry.span("torture.db_recovery", "failures",
                                nested=bool(nested)):
            if nested and nested[0] == "db-recovery":
                first_pass = dbrecovery.recover(
                    world.engine, durable_log,
                    crash_after_installs=nested[1])
                if first_pass.interrupted:
                    result.nested_performed = True
                    injector.execute_cut()
                    injector.reboot_all()
            report = dbrecovery.recover(world.engine, durable_log)
            dbrecovery.check_consistency(world.engine, report)
        result.db_report = report
        for txn_id in report.lost_committed_txns:
            result.violations.append("db:lost-txn:%s" % (txn_id,))
        for key in report.torn_unrepairable:
            result.violations.append("db:torn-page:%s" % (key,))
        for kind, key, found, want in report.consistency_violations:
            result.violations.append(
                "db:%s:%s:found=%s:want=%s" % (kind, key, found, want))
        span.annotate(violations=len(result.violations),
                      failed=result.failed)
    return result


class SweepResult:
    """Outcome of a full crash-point sweep."""

    def __init__(self, scenario, recording, mode):
        self.scenario = scenario
        self.recording = recording
        self.mode = mode
        self.trials = []
        self.failures = []
        self.first_failure = None

    @property
    def clean(self):
        return not self.failures

    def summary(self):
        nested = sum(1 for t in self.trials if t.nested_performed)
        return {
            "mode": self.mode,
            "candidates": len(self.recording.cut_candidates),
            "trials": len(self.trials),
            "nested_trials": nested,
            "failures": len(self.failures),
            "violations": sum(len(t.violations) for t in self.trials),
            "expected_clean": (self.trials[0].expected_clean
                               if self.trials else True),
        }

    def __repr__(self):
        return "<SweepResult %r>" % (self.summary(),)


#: Sweeps at or below this many candidates run exhaustively by default.
EXHAUSTIVE_LIMIT = 400


def sweep(scenario, max_trials=None, nested_stride=5, nested_budget=1,
          stop_on_failure=False, telemetry=None):
    """Record once, then torture every (sampled) cut point.

    ``max_trials`` caps the number of primary cut points; when the
    candidate list is longer, a seeded sample is swept instead and any
    failure is refined by bisection back toward the earliest failing
    candidate.  Every ``nested_stride``-th fired trial is additionally
    re-run with a nested cut during device recovery and during database
    recovery (``nested_budget`` items/installs deep).
    """
    recording = record(scenario, telemetry=telemetry)
    candidates = recording.cut_candidates
    limit = EXHAUSTIVE_LIMIT if max_trials is None else max_trials
    if len(candidates) <= limit:
        indices = list(range(len(candidates)))
        mode = "exhaustive"
    else:
        rng = make_rng(("torture-sample", scenario.seed))
        indices = sorted(rng.sample(range(len(candidates)), limit))
        mode = "sampled"
    result = SweepResult(scenario, recording, mode)
    passed_indices = set()
    failed_indices = set()

    def run_one(index, nested=None):
        trial = run_trial(scenario, recording.ops, candidates[index],
                          nested=nested, telemetry=telemetry)
        result.trials.append(trial)
        if trial.failed:
            result.failures.append(trial)
            failed_indices.add(index)
        elif nested is None:
            passed_indices.add(index)
        return trial

    for position, index in enumerate(indices):
        trial = run_one(index)
        if trial.fired and nested_stride and position % nested_stride == 0:
            run_one(index, nested=("device-recovery", nested_budget))
            run_one(index, nested=("db-recovery", nested_budget))
        if stop_on_failure and result.failures:
            break

    if mode == "sampled" and failed_indices and not stop_on_failure:
        # Bisection refinement: close in on the earliest failing
        # candidate between the last sampled pass and the first sampled
        # failure.
        high = min(failed_indices)
        lower_passes = [i for i in passed_indices if i < high]
        low = max(lower_passes) if lower_passes else -1
        while high - low > 1:
            middle = (low + high) // 2
            trial = run_one(middle)
            if trial.failed:
                high = middle
            else:
                low = middle
        result.first_failure = candidates[high]
    elif failed_indices:
        result.first_failure = candidates[min(failed_indices)]
    return result


def make_artifact(scenario, ops, cut_time, nested, trial):
    """A self-contained, replayable description of one failure."""
    return {
        "format": ARTIFACT_FORMAT,
        "scenario": scenario.to_json(),
        "ops": [[name, node] for name, node in ops],
        "cut_time": cut_time,
        "nested": list(nested) if nested else None,
        "violations": list(trial.violations),
    }


def replay_artifact(artifact, telemetry=None):
    """Re-run a minimized repro from its JSON alone; returns the trial."""
    if isinstance(artifact, (str, bytes)):
        artifact = json.loads(artifact)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError("not a torture artifact: %r"
                         % (artifact.get("format"),))
    scenario = TortureScenario.from_json(artifact["scenario"])
    ops = [(name, node) for name, node in artifact["ops"]]
    nested = tuple(artifact["nested"]) if artifact.get("nested") else None
    return run_trial(scenario, ops, artifact["cut_time"], nested=nested,
                     telemetry=telemetry)


def minimize(scenario, ops, nested=None, probe_budget=8, predicate=None,
             telemetry=None):
    """Shrink a failing schedule to (shortest op prefix, earliest cut).

    Binary-searches the shortest operation prefix that still fails at
    *some* cut point (probing up to ``probe_budget`` late candidates per
    prefix — data lost at a cut is most often data produced near the
    end), then scans that prefix's candidates for the earliest failing
    one.  Returns a replayable artifact dict, or ``None`` when not even
    the full stream fails.

    ``predicate`` decides what counts as failing; the default is
    :attr:`TrialResult.failed` (a broken promise).  Pass
    ``lambda trial: not trial.clean`` to minimize any violating
    schedule, e.g. an expected anomaly of a volatile-cache preset.
    """
    if predicate is None:
        predicate = lambda trial: trial.failed

    def prefix_failure(length):
        prefix = ops[:length]
        recording = record(scenario, prefix, telemetry=telemetry)
        probes = recording.cut_candidates[-probe_budget:]
        for cut_time in reversed(probes):
            trial = run_trial(scenario, prefix, cut_time, nested=nested,
                              telemetry=telemetry)
            if predicate(trial):
                return recording, cut_time, trial
        return None

    if prefix_failure(len(ops)) is None:
        return None
    low, high = 1, len(ops)
    best = None
    while low < high:
        middle = (low + high) // 2
        found = prefix_failure(middle)
        if found is not None:
            best = (middle, found)
            high = middle
        else:
            low = middle + 1
    if best is None:
        length = len(ops)
        found = prefix_failure(length)
    else:
        length, found = best
    recording, cut_time, trial = found
    # Earliest failing cut for the minimized prefix.
    for candidate in recording.cut_candidates:
        if candidate >= cut_time:
            break
        earlier = run_trial(scenario, ops[:length], candidate,
                            nested=nested, telemetry=telemetry)
        if predicate(earlier):
            cut_time, trial = candidate, earlier
            break
    return make_artifact(scenario, ops[:length], cut_time, nested, trial)
