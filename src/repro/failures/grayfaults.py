"""Gray-failure model: latency faults that stall without failing stop.

Power cuts and NAND errors are *fail-stop*: the device either answers or
is dead.  Real SSDs also fail *gray* — they keep the link up but stop
answering promptly: firmware pauses (internal metadata checkpoints,
wear-leveling reshuffles), garbage-collection storms that multiply every
command's latency, transient queue-full back-pressure, per-command hangs,
and the terminal case of a device that never answers again.  None of
these corrupt data by themselves; they kill systems that assume
completions always arrive.

The model here mirrors :class:`repro.failures.faults.TransientFaultModel`:
a JSON-serializable seeded :class:`GrayFaultProfile` expands into a
deterministic episode schedule, so a chaos artifact replays the exact
same stalls.  A :class:`GrayFaultModel` instance attaches to one device
(:meth:`repro.devices.base.StorageDevice.inject_gray_faults`) and is
consulted at command entry:

* ``hold_remaining(now)`` — seconds the device refuses to start *any*
  command (firmware pause / queue-full episode / permanent hang;
  ``inf`` for the hang).
* ``command_delay(op, now)`` — extra per-command latency (random stalls
  plus the GC-storm multiplier while a storm episode is active).
* ``on_reset(now)`` — a host soft reset cures every *curable* active
  episode (pauses, storms, queue-full); a ``permanent`` hang survives
  reset, which is what forces the host to escalate.
"""

import math

from ..sim.rng import make_rng

#: episode kinds, in schedule order
STALL = "stall"
PAUSE = "pause"
GC_STORM = "gc_storm"
QUEUE_FULL = "queue_full"
HANG = "hang"

_CURABLE = frozenset((PAUSE, GC_STORM, QUEUE_FULL))


class GrayFaultProfile:
    """Seeded description of a gray-fault schedule.

    All rates are per-command Bernoulli probabilities; episode windows
    (pauses, storms, queue-full) are laid out over ``horizon`` seconds
    with exponential inter-arrival gaps.  ``hang_at`` schedules a device
    hang at an absolute instant (``None`` = never); ``hang_permanent``
    decides whether a soft reset cures it.
    """

    def __init__(self, seed=0, stall_rate=0.0, stall_time=2e-3,
                 pause_rate=0.0, pause_time=5e-3,
                 gc_storm_rate=0.0, gc_storm_time=10e-3, gc_storm_factor=8.0,
                 queue_full_rate=0.0, queue_full_time=2e-3,
                 hang_at=None, hang_permanent=False,
                 horizon=10.0, degradation_bound=None):
        for name, rate in (("stall_rate", stall_rate),
                           ("pause_rate", pause_rate),
                           ("gc_storm_rate", gc_storm_rate),
                           ("queue_full_rate", queue_full_rate)):
            if not 0.0 <= rate < 1.0:
                raise ValueError("%s must be in [0, 1): %r" % (name, rate))
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        if gc_storm_factor < 1.0:
            raise ValueError("gc_storm_factor must be >= 1")
        self.seed = seed
        self.stall_rate = stall_rate
        self.stall_time = stall_time
        self.pause_rate = pause_rate
        self.pause_time = pause_time
        self.gc_storm_rate = gc_storm_rate
        self.gc_storm_time = gc_storm_time
        self.gc_storm_factor = gc_storm_factor
        self.queue_full_rate = queue_full_rate
        self.queue_full_time = queue_full_time
        self.hang_at = hang_at
        self.hang_permanent = hang_permanent
        self.horizon = horizon
        #: allowed completion-time inflation vs a fault-free run; ``None``
        #: means the chaos harness applies its default bound
        self.degradation_bound = degradation_bound

    @property
    def quiet(self):
        """True when the profile injects nothing at all."""
        return (self.stall_rate == 0 and self.pause_rate == 0
                and self.gc_storm_rate == 0 and self.queue_full_rate == 0
                and self.hang_at is None)

    def to_json(self):
        return {
            "seed": self.seed,
            "stall_rate": self.stall_rate,
            "stall_time": self.stall_time,
            "pause_rate": self.pause_rate,
            "pause_time": self.pause_time,
            "gc_storm_rate": self.gc_storm_rate,
            "gc_storm_time": self.gc_storm_time,
            "gc_storm_factor": self.gc_storm_factor,
            "queue_full_rate": self.queue_full_rate,
            "queue_full_time": self.queue_full_time,
            "hang_at": self.hang_at,
            "hang_permanent": self.hang_permanent,
            "horizon": self.horizon,
            "degradation_bound": self.degradation_bound,
        }

    @classmethod
    def from_json(cls, data):
        return cls(**data)


class Episode:
    """One scheduled gray-fault window on a device."""

    __slots__ = ("kind", "start", "end")

    def __init__(self, kind, start, end):
        self.kind = kind
        self.start = start
        self.end = end

    def active(self, now):
        return self.start <= now < self.end

    def __repr__(self):
        return "Episode(%s, %.6f, %s)" % (
            self.kind, self.start,
            "inf" if self.end == math.inf else "%.6f" % self.end)


class GrayFaultModel:
    """Deterministic per-device oracle expanded from a profile.

    ``salt`` decorrelates devices sharing one profile (the chaos harness
    salts with the device role so log and data devices stall at
    different instants).
    """

    def __init__(self, profile=None, salt=""):
        self.profile = profile or GrayFaultProfile()
        self._rng = make_rng(("gray-faults", self.profile.seed, salt))
        self.episodes = self._expand()
        self.counters = {"stalls": 0, "pauses": 0, "gc_storms": 0,
                         "queue_full": 0, "hangs": 0, "cured_by_reset": 0}
        #: first simulated instant an injection actually perturbed a
        #: command — the reference point for detection-latency verdicts
        #: (an episode no command ever hits is undetectable by design)
        self.first_fault_time = None

    def _mark_injection(self, now):
        if self.first_fault_time is None:
            self.first_fault_time = now

    def _expand(self):
        """Lay episode windows over the horizon, deterministically."""
        profile, episodes = self.profile, []
        for kind, rate, duration in ((PAUSE, profile.pause_rate,
                                      profile.pause_time),
                                     (GC_STORM, profile.gc_storm_rate,
                                      profile.gc_storm_time),
                                     (QUEUE_FULL, profile.queue_full_rate,
                                      profile.queue_full_time)):
            if rate <= 0.0:
                continue
            # Interpret the rate as episode density: ``rate * 100``
            # expected episodes over the horizon, however long the
            # horizon is.  Exponential gaps keep the layout memoryless
            # and seed-stable.
            mean_gap = profile.horizon / (rate * 100.0)
            clock = self._rng.expovariate(1.0 / mean_gap)
            while clock < profile.horizon:
                length = duration * (0.5 + self._rng.random())
                episodes.append(Episode(kind, clock, clock + length))
                clock += length + self._rng.expovariate(1.0 / mean_gap)
        if profile.hang_at is not None:
            episodes.append(Episode(HANG, profile.hang_at, math.inf))
        episodes.sort(key=lambda episode: episode.start)
        return episodes

    # --- oracles consulted by the device ---------------------------------
    def hold_remaining(self, now):
        """Seconds before the device will start a new command.

        ``inf`` while a hang episode is active (the command never starts;
        only a host abort gets the submitter back).
        """
        hold = 0.0
        for episode in self.episodes:
            if not episode.active(now):
                continue
            if episode.kind == HANG:
                self.counters["hangs"] += 1
                self._mark_injection(now)
                return math.inf
            if episode.kind == PAUSE:
                self.counters["pauses"] += 1
                hold = max(hold, episode.end - now)
            elif episode.kind == QUEUE_FULL:
                self.counters["queue_full"] += 1
                hold = max(hold, episode.end - now)
        if hold > 0.0:
            self._mark_injection(now)
        return hold

    def command_delay(self, op, now):
        """Extra latency added to one command that did start."""
        delay = 0.0
        profile = self.profile
        if profile.stall_rate > 0.0 \
                and self._rng.random() < profile.stall_rate:
            self.counters["stalls"] += 1
            delay += profile.stall_time * (0.5 + self._rng.random())
        for episode in self.episodes:
            if episode.kind == GC_STORM and episode.active(now):
                self.counters["gc_storms"] += 1
                delay += (profile.gc_storm_factor - 1.0) \
                    * profile.stall_time
                break
        if delay > 0.0:
            self._mark_injection(now)
        return delay

    def on_reset(self, now):
        """A soft reset truncates every curable active episode."""
        for episode in self.episodes:
            if episode.active(now) and (episode.kind in _CURABLE
                                        or (episode.kind == HANG
                                            and not self.profile
                                            .hang_permanent)):
                episode.end = now
                self.counters["cured_by_reset"] += 1


#: named profiles for the chaos CLI and the --gray-faults bench flag
PROFILES = {
    "none": lambda seed: GrayFaultProfile(seed=seed),
    "mild": lambda seed: GrayFaultProfile(
        seed=seed, stall_rate=0.02, stall_time=1e-3,
        gc_storm_rate=0.01, gc_storm_time=5e-3, gc_storm_factor=4.0),
    "stalls": lambda seed: GrayFaultProfile(
        seed=seed, stall_rate=0.10, stall_time=3e-3),
    "gc-storm": lambda seed: GrayFaultProfile(
        seed=seed, gc_storm_rate=0.05, gc_storm_time=20e-3,
        gc_storm_factor=10.0),
    "pause": lambda seed: GrayFaultProfile(
        seed=seed, pause_rate=0.05, pause_time=30e-3),
    "queue-full": lambda seed: GrayFaultProfile(
        seed=seed, queue_full_rate=0.05, queue_full_time=5e-3),
    "hang": lambda seed: GrayFaultProfile(
        seed=seed, hang_at=2.5, hang_permanent=False),
    "hang-permanent": lambda seed: GrayFaultProfile(
        seed=seed, hang_at=2.5, hang_permanent=True,
        degradation_bound=math.inf),
}


def make_profile(name, seed=0):
    """Instantiate a named profile; raises ``KeyError`` on unknown names."""
    if name not in PROFILES:
        raise KeyError("unknown gray-fault profile %r (known: %s)"
                       % (name, ", ".join(sorted(PROFILES))))
    return PROFILES[name](seed)
