"""Power-fault injection, transient faults and post-crash ACID checking."""

from .checker import (
    CheckReport,
    Violation,
    check_device,
    check_write_order,
    latest_acked_values,
)
from .faults import FaultConfig, FlashFaultError, TransientFaultModel
from .injector import PowerCut, PowerFailureInjector, run_until_power_cut
from .torture import (
    TortureScenario,
    TrialResult,
    SweepResult,
    build_world,
    generate_ops,
    make_artifact,
    minimize,
    record,
    replay_artifact,
    run_trial,
    sweep,
    verify_determinism,
)

__all__ = [
    "CheckReport",
    "FaultConfig",
    "FlashFaultError",
    "PowerCut",
    "PowerFailureInjector",
    "SweepResult",
    "TortureScenario",
    "TransientFaultModel",
    "TrialResult",
    "Violation",
    "build_world",
    "check_device",
    "check_write_order",
    "generate_ops",
    "latest_acked_values",
    "make_artifact",
    "minimize",
    "record",
    "replay_artifact",
    "run_trial",
    "run_until_power_cut",
    "sweep",
    "verify_determinism",
]
