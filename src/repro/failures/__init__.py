"""Power-fault injection and post-crash ACID checking."""

from .checker import (
    CheckReport,
    Violation,
    check_device,
    check_write_order,
    latest_acked_values,
)
from .injector import PowerCut, PowerFailureInjector, run_until_power_cut

__all__ = [
    "CheckReport",
    "PowerCut",
    "PowerFailureInjector",
    "Violation",
    "check_device",
    "check_write_order",
    "latest_acked_values",
    "run_until_power_cut",
]
