"""Power-fault injection, transient faults and post-crash ACID checking."""

from .checker import (
    CheckReport,
    Violation,
    check_device,
    check_write_order,
    latest_acked_values,
)
from .chaos import (
    ChaosResult,
    chaos_scenario,
    make_chaos_artifact,
    minimize_chaos,
    run_chaos,
)
from .chaos import replay_artifact as replay_chaos_artifact
from .checker import check_undetected_corruption
from .corruption import (
    CORRUPTION_PROFILES,
    CorruptionConfig,
    CorruptionModel,
    make_corruption_profile,
)
from .death import (
    DEATH_PROFILES,
    DeviceDeathModel,
    DeviceDeathSchedule,
    make_death_schedule,
)
from .faults import FaultConfig, FlashFaultError, TransientFaultModel
from .grayfaults import (
    PROFILES,
    GrayFaultModel,
    GrayFaultProfile,
    make_profile,
)
from .injector import PowerCut, PowerFailureInjector, run_until_power_cut
from .torture import (
    TortureScenario,
    TrialResult,
    SweepResult,
    build_world,
    generate_ops,
    make_artifact,
    minimize,
    record,
    replay_artifact,
    run_trial,
    sweep,
    verify_determinism,
)

__all__ = [
    "CORRUPTION_PROFILES",
    "ChaosResult",
    "CheckReport",
    "CorruptionConfig",
    "CorruptionModel",
    "DEATH_PROFILES",
    "DeviceDeathModel",
    "DeviceDeathSchedule",
    "FaultConfig",
    "FlashFaultError",
    "GrayFaultModel",
    "GrayFaultProfile",
    "PROFILES",
    "PowerCut",
    "PowerFailureInjector",
    "SweepResult",
    "TortureScenario",
    "TransientFaultModel",
    "TrialResult",
    "Violation",
    "build_world",
    "chaos_scenario",
    "check_device",
    "check_undetected_corruption",
    "check_write_order",
    "generate_ops",
    "latest_acked_values",
    "make_artifact",
    "make_chaos_artifact",
    "make_corruption_profile",
    "make_death_schedule",
    "make_profile",
    "minimize",
    "minimize_chaos",
    "record",
    "replay_artifact",
    "replay_chaos_artifact",
    "run_chaos",
    "run_trial",
    "run_until_power_cut",
    "sweep",
    "verify_determinism",
]
