"""The TPC-C order-entry benchmark.

Five transaction types over the nine-table warehouse schema, with the
standard mix (45% New-Order, 43% Payment, 4% each of Order-Status,
Delivery and Stock-Level).  Throughput is reported as **tpmC** —
New-Order transactions per minute — the metric of Table 4.

The paper's run: 1,000 warehouses (~100GB), 2GB buffer pool, Benchmark
Factory clients over GigE against a commercial DBMS.  We scale the
warehouse count with the database size and keep the per-transaction
page-access profiles at their TPC-C values.
"""

from ..sim import LatencyRecorder, ThroughputMeter
from ..sim.resources import Resource
from ..sim.rng import make_rng

#: (name, weight %) — the standard TPC-C transaction mix
TRANSACTION_MIX = [
    ("NEW_ORDER", 45.0),
    ("PAYMENT", 43.0),
    ("ORDER_STATUS", 4.0),
    ("DELIVERY", 4.0),
    ("STOCK_LEVEL", 4.0),
]

#: full-scale rows per warehouse (TPC-C spec) and row sizes
FULL_STOCK_PER_WAREHOUSE = 100_000
FULL_CUSTOMER_PER_WAREHOUSE = 30_000
FULL_ORDER_LINES_PER_WAREHOUSE = 300_000
DISTRICTS_PER_WAREHOUSE = 10
FULL_ITEM_ROWS = 100_000


class TPCCConfig:
    """Scale and cost model for one TPC-C database.

    The warehouse (and district) count stays at the paper's 1,000 —
    district-row contention is a first-order effect in TPC-C and must
    not be distorted — while the *rows per warehouse* shrink by
    ``scale`` so the database and buffer pool fit a laptop.
    """

    def __init__(self, scale=256, warehouses=1000,
                 cpu_per_transaction=2.2e-3,
                 cpu_per_page_kib=8e-6, host_cores=32,
                 remote_client_rtt=250e-6, seed=11):
        self.scale = scale
        self.warehouses = warehouses
        self.cpu_per_transaction = cpu_per_transaction
        self.cpu_per_page_kib = cpu_per_page_kib
        self.host_cores = host_cores
        # Benchmark Factory drove the server over Gigabit Ethernet.
        self.remote_client_rtt = remote_client_rtt
        self.seed = seed

    @property
    def stock_per_warehouse(self):
        return max(40, FULL_STOCK_PER_WAREHOUSE // self.scale)

    @property
    def customer_per_warehouse(self):
        return max(20, FULL_CUSTOMER_PER_WAREHOUSE // self.scale)

    @property
    def order_lines_per_warehouse(self):
        return max(120, FULL_ORDER_LINES_PER_WAREHOUSE // self.scale)

    @property
    def item_rows(self):
        return max(400, FULL_ITEM_ROWS // self.scale)


class TPCCResult:
    def __init__(self):
        self.meter = ThroughputMeter("tpcc")          # all transactions
        self.new_orders = ThroughputMeter("neworder")  # tpmC source
        self.latency = {name: LatencyRecorder(name)
                        for name, _w in TRANSACTION_MIX}

    @property
    def tpmc(self):
        return self.new_orders.per_minute()

    @property
    def tps(self):
        return self.meter.per_second()


class TPCCWorkload:
    """TPC-C over a page-engine (the commercial engine in the paper)."""

    def __init__(self, engine, config):
        self.engine = engine
        self.config = config
        warehouses = config.warehouses
        self.stock = engine.create_table(
            "stock", warehouses * config.stock_per_warehouse, 300)
        self.customer = engine.create_table(
            "customer", warehouses * config.customer_per_warehouse, 600)
        self.district = engine.create_table(
            "district", warehouses * DISTRICTS_PER_WAREHOUSE, 100)
        self.item = engine.create_table("item", config.item_rows, 80)
        self.orders = engine.create_table(
            "orders", warehouses * config.order_lines_per_warehouse // 10, 60)
        self.order_line = engine.create_table(
            "order_line", warehouses * config.order_lines_per_warehouse, 70)
        self._weights = [weight for _n, weight in TRANSACTION_MIX]
        self._names = [name for name, _w in TRANSACTION_MIX]
        # per-district append cursors: order inserts land on the hot
        # tail pages of the orders/order_line trees, as they do in a
        # real TPC-C database
        self._order_cursor = {}

    # --- key helpers ------------------------------------------------------------
    def _rank(self, rng, table, warehouse, per_warehouse):
        base = warehouse * per_warehouse
        return min(base + rng.randrange(per_warehouse), table.n_rows - 1)

    def _customer_rank(self, rng, warehouse):
        """NURand-style skew: 60% of accesses hit a hot 10% of the
        warehouse's customers."""
        span = self.config.customer_per_warehouse
        base = warehouse * span
        if rng.random() < 0.6:
            rank = base + rng.randrange(max(1, span // 10))
        else:
            rank = base + rng.randrange(span)
        return min(rank, self.customer.n_rows - 1)

    def _order_insert_rank(self, rng, table, warehouse, per_warehouse):
        """Inserts append at a per-district cursor: tail pages stay hot."""
        district = (warehouse, rng.randrange(DISTRICTS_PER_WAREHOUSE),
                    table.space_id)
        cursor = self._order_cursor.get(district, 0)
        self._order_cursor[district] = cursor + 1
        base = warehouse * per_warehouse
        window = max(1, table.leaf_capacity * 2)
        return min(base + (cursor % window), table.n_rows - 1)

    # --- transaction bodies ---------------------------------------------------------
    def _new_order(self, rng, warehouse):
        """~23 reads (district, customer, 10 items, 10 stocks) and ~14
        writes (district counter, 10 stock rows, order + lines)."""
        engine = self.engine
        txn = engine.begin()
        yield from engine.read_rank(self.customer,
                                    self._customer_rank(rng, warehouse))
        yield from engine.modify_rank(
            txn, self.district, self._rank(rng, self.district, warehouse,
                                           DISTRICTS_PER_WAREHOUSE))
        # Stock rows are locked in sorted order — the standard TPC-C
        # implementation trick that avoids lock-order deadlocks between
        # concurrent New-Orders.
        stock_ranks = sorted(
            self._rank(rng, self.stock, warehouse,
                       self.config.stock_per_warehouse)
            for _ in range(10))
        for stock_rank in stock_ranks:
            yield from engine.read_rank(
                self.item, rng.randrange(self.item.n_rows))
            yield from engine.modify_rank(txn, self.stock, stock_rank)
        yield from engine.modify_rank(
            txn, self.orders,
            self._order_insert_rank(rng, self.orders, warehouse,
                                    self.config.order_lines_per_warehouse // 10))
        yield from engine.modify_rank(
            txn, self.order_line,
            self._order_insert_rank(rng, self.order_line, warehouse,
                                    self.config.order_lines_per_warehouse))
        yield from engine.commit(txn)

    def _payment(self, rng, warehouse):
        engine = self.engine
        txn = engine.begin()
        yield from engine.modify_rank(
            txn, self.district, self._rank(rng, self.district, warehouse,
                                           DISTRICTS_PER_WAREHOUSE))
        yield from engine.modify_rank(txn, self.customer,
                                      self._customer_rank(rng, warehouse))
        yield from engine.commit(txn)

    def _order_status(self, rng, warehouse):
        engine = self.engine
        yield from engine.read_rank(self.customer,
                                    self._customer_rank(rng, warehouse))
        yield from engine.scan(
            self.order_line,
            self._order_insert_rank(rng, self.order_line, warehouse,
                                    self.config.order_lines_per_warehouse), 10)

    def _delivery(self, rng, warehouse):
        engine = self.engine
        txn = engine.begin()
        order_ranks = sorted(
            self._order_insert_rank(rng, self.orders, warehouse,
                                    self.config.order_lines_per_warehouse
                                    // 10)
            for _ in range(10))
        for order_rank in order_ranks:
            yield from engine.modify_rank(txn, self.orders, order_rank)
        yield from engine.commit(txn)

    def _stock_level(self, rng, warehouse):
        engine = self.engine
        yield from engine.scan(
            self.stock, self._rank(rng, self.stock, warehouse,
                                   self.config.stock_per_warehouse),
            min(200, self.config.stock_per_warehouse))

    def _pages_touched(self, name):
        depth = self.stock.depth
        return {"NEW_ORDER": 25 * depth,
                "PAYMENT": 2 * depth,
                "ORDER_STATUS": 2 * depth + 2,
                "DELIVERY": 10 * depth,
                "STOCK_LEVEL": depth + 8}[name]

    # --- warm-up & driver --------------------------------------------------------------
    def key_stream(self, rng):
        tables = [(self.stock, self.config.stock_per_warehouse, 40),
                  (self.customer, self.config.customer_per_warehouse, 25),
                  (self.item, None, 20),
                  (self.district, DISTRICTS_PER_WAREHOUSE, 10),
                  (self.order_line, self.config.order_lines_per_warehouse, 5)]
        choices = [entry for entry in tables]
        weights = [weight for _t, _p, weight in tables]
        warehouses = self.config.warehouses
        while True:
            table, per_wh, _weight = rng.choices(choices, weights=weights)[0]
            if per_wh is None:
                yield table, rng.randrange(table.n_rows)
                continue
            warehouse = rng.randrange(warehouses)
            if table is self.customer:
                yield table, self._customer_rank(rng, warehouse)
            else:
                yield table, self._rank(rng, table, warehouse, per_wh)

    def run(self, clients=64, txns_per_client=100, warmup_txns=15,
            warm_buffer=True):
        sim = self.engine.sim
        if warm_buffer:
            rng = make_rng((self.config.seed, "warm"))
            self.engine.warm(self.key_stream(rng), dirty_rng=rng)
        result = TPCCResult()
        cores = Resource(sim, capacity=self.config.host_cores)
        bodies = {"NEW_ORDER": self._new_order, "PAYMENT": self._payment,
                  "ORDER_STATUS": self._order_status,
                  "DELIVERY": self._delivery,
                  "STOCK_LEVEL": self._stock_level}

        def client(index):
            rng = make_rng((self.config.seed, "client", index))
            for i in range(warmup_txns + txns_per_client):
                if i == warmup_txns and index == 0:
                    result.meter.start_window(sim.now)
                    result.new_orders.start_window(sim.now)
                name = rng.choices(self._names, weights=self._weights)[0]
                warehouse = rng.randrange(self.config.warehouses)
                begin = sim.now
                yield sim.timeout(self.config.remote_client_rtt)
                page_kib = self.engine.config.page_size / 1024.0
                cpu = (self.config.cpu_per_transaction +
                       self._pages_touched(name) * page_kib *
                       self.config.cpu_per_page_kib)
                yield cores.acquire()
                try:
                    yield sim.timeout(cpu)
                finally:
                    cores.release()
                yield from bodies[name](rng, warehouse)
                if i >= warmup_txns:
                    result.latency[name].record(sim.now - begin)
                    result.meter.record(sim.now)
                    if name == "NEW_ORDER":
                        result.new_orders.record(sim.now)

        done = sim.all_of([sim.process(client(i)) for i in range(clients)])
        sim.run_until(done)
        return result
