"""The Yahoo! Cloud Serving Benchmark (Cooper et al., SoCC'10).

YCSB models web-serving workloads as streams of single-record
operations over a key space with Zipfian popularity.  The paper uses
**Workload A** (50% reads / 50% updates) — the only core workload with
writes — plus a 100%-update variant, against Couchbase (Table 5).

All five core workloads are defined here so the library is usable
beyond the paper's experiment.
"""

from ..sim import LatencyRecorder, ThroughputMeter
from ..sim.rng import ScrambledZipfGenerator, make_rng

#: the core YCSB workloads: (read %, update %, insert %, scan %)
CORE_WORKLOADS = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}


class YCSBConfig:
    def __init__(self, workload="A", record_count=100_000,
                 update_fraction=None, zipf_theta=0.99, seed=21):
        if workload not in CORE_WORKLOADS:
            raise ValueError("unknown YCSB workload: %r" % workload)
        self.workload = workload
        self.record_count = record_count
        self.zipf_theta = zipf_theta
        self.seed = seed
        mix = dict(CORE_WORKLOADS[workload])
        if update_fraction is not None:
            # Table 5 also measures a 100%-update variant of workload A.
            mix = {"read": 1.0 - update_fraction,
                   "update": update_fraction}
        self.mix = {op: weight for op, weight in mix.items() if weight > 0}


class YCSBResult:
    def __init__(self):
        self.meter = ThroughputMeter("ycsb")
        self.latency = LatencyRecorder("ops")
        self.read_latency = LatencyRecorder("reads")
        self.update_latency = LatencyRecorder("updates")

    @property
    def ops_per_second(self):
        return self.meter.per_second()


class YCSBWorkload:
    """Drives a key-value engine exposing ``read(key, rng)`` and
    ``update(key, rng)`` generators (the couchstore engine)."""

    def __init__(self, engine, config):
        self.engine = engine
        self.config = config

    def run(self, clients=1, ops_per_client=2000, warmup_ops=50):
        sim = self.engine.sim
        result = YCSBResult()
        ops = list(self.config.mix.items())
        names = [name for name, _w in ops]
        weights = [weight for _n, weight in ops]

        def client(index):
            rng = make_rng((self.config.seed, index))
            zipf = ScrambledZipfGenerator(self.config.record_count,
                                          self.config.zipf_theta, rng)
            for i in range(warmup_ops + ops_per_client):
                if i == warmup_ops and index == 0:
                    result.meter.start_window(sim.now)
                name = rng.choices(names, weights=weights)[0]
                key = zipf.next()
                begin = sim.now
                if name in ("update", "insert"):
                    yield from self.engine.update(key, rng)
                elif name == "rmw":
                    yield from self.engine.read(key, rng)
                    yield from self.engine.update(key, rng)
                elif name == "scan":
                    for offset in range(rng.randrange(1, 10)):
                        yield from self.engine.read(key + offset, rng)
                else:
                    yield from self.engine.read(key, rng)
                if i >= warmup_ops:
                    latency = sim.now - begin
                    result.latency.record(latency)
                    if name == "read":
                        result.read_latency.record(latency)
                    elif name == "update":
                        result.update_latency.record(latency)
                    result.meter.record(sim.now)

        done = sim.all_of([sim.process(client(i)) for i in range(clients)])
        sim.run_until(done)
        return result
