"""The LinkBench workload (Armstrong et al., SIGMOD'13).

Facebook's social-graph benchmark: nodes, typed links, and link counts,
with a read-heavy (~70/30) mix of ten operation types.  Because most
reads are absorbed by an upstream cache tier, the key distribution
reaching the database has modest locality — modelled as a scrambled
Zipfian over node ids.

The driver reports exactly what the paper's Tables/Figures need:
transactions per second plus per-operation latency distributions
(mean/P25/P50/P75/P99/max, Table 3).
"""

from ..sim import LatencyRecorder, ThroughputMeter
from ..sim.resources import Resource
from ..sim.rng import ZipfGenerator, make_rng

#: (operation name, weight %, kind) — the benchmark's default mix.
OPERATION_MIX = [
    ("GET_NODE", 12.9, "read"),
    ("COUNT_LINK", 4.9, "read"),
    ("GET_LINK_LIST", 50.7, "read"),
    ("MULTIGET_LINK", 0.5, "read"),
    ("ADD_NODE", 2.6, "write"),
    ("DELETE_NODE", 1.0, "write"),
    ("UPDATE_NODE", 7.4, "write"),
    ("ADD_LINK", 9.0, "write"),
    ("DELETE_LINK", 3.0, "write"),
    ("UPDATE_LINK", 8.0, "write"),
]

#: average row sizes (bytes) from the LinkBench data model
NODE_ROW_BYTES = 320
LINK_ROW_BYTES = 220
COUNT_ROW_BYTES = 32
LINKS_PER_NODE = 5


class LinkBenchConfig:
    """Scale and behaviour of one LinkBench database."""

    def __init__(self, db_bytes, zipf_theta=0.90, hot_fraction=0.95,
                 hot_node_fraction=0.003, range_rows=8,
                 cpu_per_operation=850e-6, cpu_per_page_kib=8e-6,
                 host_cores=32, seed=7):
        self.db_bytes = db_bytes
        # Request locality: ``hot_fraction`` of requests go (Zipf-skewed)
        # to a working set of ``hot_node_fraction`` of the graph; the
        # rest are uniform over everything.  This mixture reproduces the
        # 3-9% buffer miss ratios of Figure 6(a): LinkBench's traffic is
        # cache-filtered, but the social graph still has a hot core.
        self.zipf_theta = zipf_theta
        self.hot_fraction = hot_fraction
        self.hot_node_fraction = hot_node_fraction
        # Writes are NOT filtered by the caching tier, so they reach the
        # database with far less locality than reads — this is what
        # keeps the LRU tail full of cooling dirty pages and makes
        # "every other read blocked by writes" (Section 4.3.1) true.
        self.write_hot_fraction = 0.55
        self.range_rows = range_rows
        self.cpu_per_operation = cpu_per_operation
        # CPU per page touched scales with the page size: latching,
        # searching and copying a 16KB page costs ~4x a 4KB one.
        self.cpu_per_page_kib = cpu_per_page_kib
        self.host_cores = host_cores  # the paper's 4x8-core Xeon host
        self.seed = seed

    @property
    def n_nodes(self):
        per_node = (NODE_ROW_BYTES + LINKS_PER_NODE * LINK_ROW_BYTES
                    + COUNT_ROW_BYTES)
        return max(1000, int(self.db_bytes // per_node))


class LinkBenchResult:
    """Throughput plus per-operation latency distributions."""

    def __init__(self):
        self.meter = ThroughputMeter("linkbench")
        self.op_latency = {name: LatencyRecorder(name)
                           for name, _w, _k in OPERATION_MIX}
        self.reads = LatencyRecorder("reads")
        self.writes = LatencyRecorder("writes")
        self.buffer_miss_ratio = 0.0
        self.engine_counters = {}
        self.pool_stats = {}

    @property
    def tps(self):
        return self.meter.per_second()

    def latency_table(self):
        """{op: summary dict} in the paper's Table 3 shape (seconds)."""
        return {name: recorder.summary()
                for name, recorder in self.op_latency.items()}


class NodeSampler:
    """Draws node ids with the hot/cold mixture of LinkBenchConfig."""

    _GOLDEN = 0x9E3779B97F4A7C15

    def __init__(self, config, rng, hot_fraction=None):
        self._rng = rng
        self._n = config.n_nodes
        self._hot_fraction = (config.hot_fraction if hot_fraction is None
                              else hot_fraction)
        hot_count = max(100, int(self._n * config.hot_node_fraction))
        self._zipf = ZipfGenerator(hot_count, config.zipf_theta, rng)

    def next(self):
        if self._rng.random() < self._hot_fraction:
            rank = self._zipf.next()
            # spread the hot set across the id space deterministically
            return ((rank * self._GOLDEN) & 0xFFFFFFFFFFFFFFFF) % self._n
        return self._rng.randrange(self._n)


class LinkBenchWorkload:
    """Generates and executes the operation stream against an engine."""

    def __init__(self, engine, config):
        self.engine = engine
        self.config = config
        n_nodes = config.n_nodes
        self.node_table = engine.create_table("node", n_nodes,
                                              NODE_ROW_BYTES)
        self.link_table = engine.create_table("link",
                                              n_nodes * LINKS_PER_NODE,
                                              LINK_ROW_BYTES)
        self.count_table = engine.create_table("count", n_nodes,
                                               COUNT_ROW_BYTES)
        self._weights = [weight for _n, weight, _k in OPERATION_MIX]
        self._kinds = {name: kind for name, _w, kind in OPERATION_MIX}
        metrics = engine.sim.telemetry.metrics
        self._op_counter = metrics.counter("workload.ops")
        self._latency_hists = {
            "read": metrics.histogram("workload.read_latency"),
            "write": metrics.histogram("workload.write_latency"),
        }

    def db_pages(self):
        return (self.node_table.total_pages + self.link_table.total_pages
                + self.count_table.total_pages)

    # --- key streams ----------------------------------------------------------
    def key_stream(self, rng):
        """Infinite (table, rank) pairs for warm-up, matching the op mix's
        page-touch distribution."""
        sampler = NodeSampler(self.config, rng)
        tables = [self.node_table, self.link_table, self.count_table]
        while True:
            node = sampler.next()
            table = rng.choices(tables, weights=[20, 70, 10])[0]
            if table is self.link_table:
                yield table, min(node * LINKS_PER_NODE,
                                 table.n_rows - 1)
            else:
                yield table, min(node, table.n_rows - 1)

    def warm(self):
        """Pre-fill the buffer pool (the paper's 600s warm-up run)."""
        rng = make_rng((self.config.seed, "warm"))
        self.engine.warm(self.key_stream(rng), dirty_rng=rng)

    # --- operations -------------------------------------------------------------
    def _operation(self, name, node):
        """Generator performing one LinkBench operation."""
        engine = self.engine
        node_rank = min(node, self.node_table.n_rows - 1)
        link_rank = min(node * LINKS_PER_NODE, self.link_table.n_rows - 1)
        count_rank = min(node, self.count_table.n_rows - 1)
        if name == "GET_NODE":
            yield from engine.read_rank(self.node_table, node_rank)
        elif name == "COUNT_LINK":
            yield from engine.read_rank(self.count_table, count_rank)
        elif name == "GET_LINK_LIST":
            yield from engine.scan(self.link_table, link_rank,
                                   self.config.range_rows)
        elif name == "MULTIGET_LINK":
            yield from engine.scan(self.link_table, link_rank, 2)
        elif name == "GET_NODE":  # pragma: no cover - exhaustiveness
            yield from engine.read_rank(self.node_table, node_rank)
        elif name in ("ADD_NODE", "UPDATE_NODE", "DELETE_NODE"):
            yield from self._write_txn(
                [(self.node_table, node_rank)])
        elif name == "UPDATE_LINK":
            yield from self._write_txn(
                [(self.link_table, link_rank)])
        elif name in ("ADD_LINK", "DELETE_LINK"):
            yield from self._write_txn(
                [(self.link_table, link_rank),
                 (self.count_table, count_rank)])
        else:
            raise ValueError("unknown operation: %r" % name)

    def _write_txn(self, modifications):
        """One write transaction; aborted (locks released) on any failure.

        Without the abort, a modify or commit failing mid-transaction —
        a deadlock victim, a device timeout escalation, a read-only
        rejection — would leak its page locks and convoy every later
        writer of those pages behind a transaction that no longer exists.
        """
        engine = self.engine
        txn = engine.begin()
        try:
            for table, rank in modifications:
                yield from engine.modify_rank(txn, table, rank)
            yield from engine.commit(txn)
        except BaseException:
            engine.abort(txn)
            raise

    def _pages_touched(self, name):
        """Approximate page touches, for the CPU cost model."""
        if name in ("GET_LINK_LIST",):
            return self.link_table.depth + 1
        if name in ("ADD_LINK", "DELETE_LINK"):
            return self.link_table.depth + self.count_table.depth
        return self.node_table.depth

    # --- the driver -----------------------------------------------------------------
    def run(self, clients, ops_per_client, warmup_ops=20,
            warm_buffer=True):
        """Run the benchmark; returns a :class:`LinkBenchResult`.

        ``warmup_ops`` per client are executed but not measured, on top
        of the untimed buffer-pool warm-up.
        """
        sim = self.engine.sim
        if warm_buffer:
            self.warm()
        result = LinkBenchResult()
        names = [name for name, _w, _k in OPERATION_MIX]
        misses_at_start = {}
        cores = Resource(sim, capacity=self.config.host_cores)

        def client(index):
            rng = make_rng((self.config.seed, "client", index))
            sampler = NodeSampler(self.config, rng)
            write_sampler = NodeSampler(self.config, rng,
                                        self.config.write_hot_fraction)
            for i in range(warmup_ops + ops_per_client):
                if i == warmup_ops and index == 0:
                    result.meter.start_window(sim.now)
                    misses_at_start.update(self.engine.pool.stats)
                name = rng.choices(names, weights=self._weights)[0]
                if self._kinds[name] == "write":
                    node = write_sampler.next()
                else:
                    node = sampler.next()
                begin = sim.now
                page_kib = self.engine.config.page_size / 1024.0
                cpu = (self.config.cpu_per_operation +
                       self._pages_touched(name) * page_kib *
                       self.config.cpu_per_page_kib)
                with sim.telemetry.span("op." + name, "workload",
                                        client=index, node=node):
                    with sim.telemetry.span("op.cpu", "workload"):
                        yield cores.acquire()
                        try:
                            yield sim.timeout(cpu)
                        finally:
                            cores.release()
                    yield from self._operation(name, node)
                if i >= warmup_ops:
                    latency = sim.now - begin
                    result.op_latency[name].record(latency)
                    target = (result.reads if self._kinds[name] == "read"
                              else result.writes)
                    target.record(latency)
                    result.meter.record(sim.now)
                    self._op_counter.inc()
                    self._latency_hists[self._kinds[name]].observe(latency)

        done = sim.all_of([sim.process(client(i)) for i in range(clients)])
        sim.run_until(done)
        stats = self.engine.pool.stats
        hits = stats["hits"] - misses_at_start.get("hits", 0)
        misses = stats["misses"] - misses_at_start.get("misses", 0)
        result.buffer_miss_ratio = (misses / (hits + misses)
                                    if hits + misses else 0.0)
        result.engine_counters = dict(self.engine.counters)
        result.pool_stats = dict(stats)
        return result
