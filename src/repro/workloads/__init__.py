"""Benchmark workloads: LinkBench, YCSB, TPC-C."""

from .linkbench import (
    LinkBenchConfig,
    LinkBenchResult,
    LinkBenchWorkload,
    NodeSampler,
    OPERATION_MIX,
)
from .tpcc import TPCCConfig, TPCCResult, TPCCWorkload, TRANSACTION_MIX
from .ycsb import CORE_WORKLOADS, YCSBConfig, YCSBResult, YCSBWorkload

__all__ = [
    "CORE_WORKLOADS",
    "LinkBenchConfig",
    "LinkBenchResult",
    "LinkBenchWorkload",
    "NodeSampler",
    "OPERATION_MIX",
    "TPCCConfig",
    "TPCCResult",
    "TPCCWorkload",
    "TRANSACTION_MIX",
    "YCSBConfig",
    "YCSBResult",
    "YCSBWorkload",
]
