"""repro — a full-stack reproduction of Kang et al., "Durable Write Cache
in Flash Memory SSD for Relational and NoSQL Databases" (SIGMOD 2014).

The package simulates the entire stack the paper evaluates:

* :mod:`repro.sim` — a deterministic discrete-event kernel,
* :mod:`repro.flash` — NAND geometry, timing, and a page-mapping FTL,
* :mod:`repro.devices` — HDD and volatile-cache SSD baselines,
* :mod:`repro.core` — DuraSSD: durable cache, atomic writer, recovery,
* :mod:`repro.host` — NCQ, write barriers, a file system, and fio,
* :mod:`repro.db` — InnoDB-, Couchbase- and commercial-style engines,
* :mod:`repro.workloads` — LinkBench, YCSB and TPC-C generators,
* :mod:`repro.failures` — power-fault injection and ACID checking,
* :mod:`repro.bench` — drivers that regenerate every table and figure.

Quick start::

    from repro.sim import Simulator
    from repro.devices import make_durassd
    from repro.host import FileSystem
    from repro.host.fio import FioJob, run_fio

    sim = Simulator()
    device = make_durassd(sim)
    fs = FileSystem(sim, device, barriers=False)   # durable cache: safe!
    job = FioJob(rw="randwrite", block_size=4096, fsync_every=1)
    result = run_fio(sim, fs, job)
    print(result.iops)
"""

__version__ = "1.0.0"

from . import core, db, devices, failures, flash, host, sim, workloads

__all__ = ["core", "db", "devices", "failures", "flash", "host", "sim",
           "workloads", "__version__"]
