"""Physical units used throughout the simulator.

The simulated clock runs in *seconds* (floats).  Sizes are in bytes
(ints).  These constants exist so device models and workloads read like
the data sheets they are calibrated from.
"""

# --- time ---------------------------------------------------------------
NSEC = 1e-9
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0
MINUTE = 60.0

# --- size ---------------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: The logical block size every device in this library addresses.
#: 4KiB matches the flash-page-sized sectors DuraSSD exposes (paper 3.1.2).
LBA_SIZE = 4 * KIB


def lba_count(nbytes):
    """Number of 4KiB logical blocks needed to hold ``nbytes``.

    >>> lba_count(4096)
    1
    >>> lba_count(4097)
    2
    """
    return (nbytes + LBA_SIZE - 1) // LBA_SIZE


def to_mib(nbytes):
    """Convert a byte count to MiB as a float (for reporting)."""
    return nbytes / MIB
