"""Simulator self-profiling: where the *wall-clock* time goes.

Every other telemetry layer observes *simulated* time; this module
observes the simulator itself.  A :class:`SimProfiler` attaches to one
:class:`~repro.sim.Simulator` and attributes host wall time and event
counts to repro layers (sim/host/device/flash/db/telemetry/workload)
and to the concrete callback targets (the generator or function each
event resumes), so "the DES runs 4x slower than real time" becomes
"62% of the wall clock is WAL-writer resumes in the db layer".

Zero overhead when off
----------------------
Attaching installs *instance-level* overrides of ``Simulator.step`` and
``Simulator._push``; a simulator that never attaches a profiler runs
the untouched class methods — not even a ``None`` check rides the hot
path.  The profiler measures only host wall time and never touches the
event heap, the clock or any randomness, so a profiled run's simulated
results (ops, TPS, telemetry export) are byte-identical to an
unprofiled run (``tests/test_determinism.py`` proves it).

Attribution model
-----------------
``step()`` pops one event and runs its callbacks; the profiler times
the whole pop-to-processed window with ``time.perf_counter`` and
charges it to the event's first callback target:

* a :class:`~repro.sim.engine.Process` resume (``_resume`` — the
  overwhelmingly common case) is charged to the *generator* it resumes,
  resolved through the generator's code object to a repro layer and a
  ``module:qualname`` label;
* any other callback is charged through its own code object;
* time spent inside the telemetry tick (probe sampling + metrics
  windows) is carved out and charged to the ``telemetry`` layer;
* the gap between consecutive steps — the ``while`` check, the step
  dispatch, the profiler's own clock reads — is the event loop itself,
  charged to ``sim`` as ``engine:event-loop``.  Gaps longer than
  :data:`GAP_CHARGE_LIMIT` are driver work *between* ``run()`` calls,
  not loop overhead; they stay unattributed (``gap_wall``) so they
  cannot inflate the sim layer.

Resolution happens once per code object and is cached, so steady-state
cost is two ``perf_counter`` calls and a handful of dict updates per
event.

Wall-clock instruments
----------------------
When the attached simulator's hub carries an *enabled* metrics
registry, the profiler registers gauge instruments so ``repro
monitor`` dashboards can chart the simulator's own efficiency:

* ``sim.real_time_factor`` — simulated seconds per wall second
  (> 1 means the simulator outruns the hardware it models);
* ``sim.events_per_sec`` — processed events per wall second;
* ``sim.wall_seconds`` — wall time spent in the event loop so far;
* ``sim.alloc_kib`` — currently traced allocations (only meaningful
  while :mod:`tracemalloc` is running; 0 otherwise).

Allocation accounting
---------------------
:func:`allocation_stats` groups a :mod:`tracemalloc` snapshot (or the
delta between two snapshots) by repro layer — the churn half of the
"why is the simulator slow" question.
"""

import heapq
import os
import time
import tracemalloc

from .engine import Process

#: repro sub-package -> profile layer.  ``core`` is the DuraSSD device
#: internals, so it reports as ``device``; everything outside the repro
#: package (tests, examples, workload drivers defined inline) is
#: ``other``.
PACKAGE_LAYERS = {
    "sim": "sim",
    "host": "host",
    "devices": "device",
    "core": "device",
    "flash": "flash",
    "db": "db",
    "telemetry": "telemetry",
    "workloads": "workload",
    "failures": "failure",
    "bench": "bench",
}

_REPRO_MARKER = "%srepro%s" % (os.sep, os.sep)

#: inter-step gaps up to this many seconds are event-loop overhead and
#: charged to ``sim``; anything longer is python running between
#: ``sim.run()`` calls and stays unattributed.
GAP_CHARGE_LIMIT = 50e-6


def layer_of_path(filename):
    """The profile layer a source path belongs to."""
    index = filename.rfind(_REPRO_MARKER)
    if index < 0:
        return "other"
    rest = filename[index + len(_REPRO_MARKER):]
    package = rest.split(os.sep, 1)[0]
    if package.endswith(".py"):       # a module directly under repro/
        return "other"
    return PACKAGE_LAYERS.get(package, "other")


def _label_of(code):
    """A stable ``module:qualname`` label for a code object."""
    filename = code.co_filename
    index = filename.rfind(_REPRO_MARKER)
    if index >= 0:
        module = filename[index + len(_REPRO_MARKER):]
        if module.endswith(".py"):
            module = module[:-3]
        module = module.replace(os.sep, ".")
    else:
        module = os.path.basename(filename)
        if module.endswith(".py"):
            module = module[:-3]
    qualname = getattr(code, "co_qualname", code.co_name)
    return "%s:%s" % (module, qualname)


class SimProfiler:
    """Wall-clock and event-count attribution for one simulator.

    Attach explicitly (``profiler.attach(sim)``) or ride the hub:
    setting ``telemetry.profiler = SimProfiler()`` before building
    ``Simulator(telemetry)`` attaches during construction, which is how
    the bench ``--profile`` flag reaches worlds it never sees built.
    """

    def __init__(self):
        self.sim = None
        self._attached = False
        #: wall seconds / popped events per layer
        self.layer_wall = {}
        self.layer_events = {}
        #: wall seconds / popped events per (layer, target-label)
        self.target_wall = {}
        self.target_events = {}
        #: wall seconds / popped events per event class name
        self.event_type_wall = {}
        self.event_type_count = {}
        #: events *scheduled* (heap pushes) per event class name
        self.push_count = {}
        #: wall seconds inside the telemetry tick (probes + metrics)
        self.tick_wall = 0.0
        #: unattributed wall seconds: inter-step gaps too long to be
        #: loop overhead (driver python between ``run()`` calls)
        self.gap_wall = 0.0
        self.steps = 0
        self._first_t0 = None
        self._last_t1 = None
        self._sim_t0 = 0.0
        self._code_cache = {}

    # --- wiring ---------------------------------------------------------
    def attach(self, sim):
        """Install the profiling step/push on ``sim`` (instance-level,
        so other simulators keep the untouched class methods)."""
        if self._attached:
            raise ValueError("profiler is already attached to a simulator")
        if sim._profiler is not None:
            raise ValueError("simulator already carries a profiler")
        self.sim = sim
        self._attached = True
        self._sim_t0 = sim.now
        sim._profiler = self
        sim.step = self._make_step(sim)
        sim._push = self._make_push(sim)
        metrics = sim.telemetry.metrics
        if metrics.enabled:
            self._register_instruments(metrics)
        return self

    def detach(self):
        """Restore the simulator's class-level step/push.  Collected
        numbers (and the ``sim`` reference, for ``sim_seconds``) stay."""
        if not self._attached:
            return
        del self.sim.step
        del self.sim._push
        self.sim._profiler = None
        self._attached = False

    def _register_instruments(self, metrics):
        metrics.gauge("sim.real_time_factor", fn=self.real_time_factor)
        metrics.gauge("sim.events_per_sec", fn=self.events_per_sec)
        metrics.gauge("sim.wall_seconds", fn=self.wall_seconds)
        metrics.gauge("sim.alloc_kib", fn=_traced_kib)

    # --- the hot path ---------------------------------------------------
    def _make_step(self, sim):
        perf = time.perf_counter
        heappop = heapq.heappop
        classify = self._classify
        layer_wall = self.layer_wall
        layer_events = self.layer_events
        target_wall = self.target_wall
        target_events = self.target_events
        type_wall = self.event_type_wall
        type_count = self.event_type_count
        loop_key = ("sim", "engine:event-loop")
        gap_limit = GAP_CHARGE_LIMIT

        def step():
            t0 = perf()
            last_t1 = self._last_t1
            if last_t1 is not None:
                gap = t0 - last_t1
                if gap <= gap_limit:
                    # The while check, the dispatch, the clock reads:
                    # the event loop's own cost, attributed to sim.
                    layer_wall["sim"] = layer_wall.get("sim", 0.0) + gap
                    target_wall[loop_key] = (
                        target_wall.get(loop_key, 0.0) + gap)
                else:
                    self.gap_wall += gap
            when, _seq, event = heappop(sim._heap)
            tick = sim._tick
            tick_dt = 0.0
            if tick is not None and when > sim.now:
                tick_t0 = perf()
                tick(when)
                tick_dt = perf() - tick_t0
            sim.now = when
            sim.processed_events += 1
            layer, label = classify(event)
            cls = event.__class__.__name__
            event._process()
            t1 = perf()
            dt = t1 - t0 - tick_dt
            layer_wall[layer] = layer_wall.get(layer, 0.0) + dt
            layer_events[layer] = layer_events.get(layer, 0) + 1
            key = (layer, label)
            target_wall[key] = target_wall.get(key, 0.0) + dt
            target_events[key] = target_events.get(key, 0) + 1
            type_wall[cls] = type_wall.get(cls, 0.0) + dt
            type_count[cls] = type_count.get(cls, 0) + 1
            if tick_dt:
                self.tick_wall += tick_dt
                layer_wall["telemetry"] = (
                    layer_wall.get("telemetry", 0.0) + tick_dt)
            self.steps += 1
            if self._first_t0 is None:
                self._first_t0 = t0
            self._last_t1 = t1

        return step

    def _make_push(self, sim):
        heappush = heapq.heappush
        counts = self.push_count

        def _push(event, delay):
            cls = event.__class__.__name__
            counts[cls] = counts.get(cls, 0) + 1
            heappush(sim._heap,
                     (sim.now + delay, next(sim._sequence), event))

        return _push

    def _classify(self, event):
        """``(layer, label)`` for the event's first callback target."""
        callbacks = event.callbacks
        if not callbacks:
            return ("sim", "engine:(no-callback)")
        callback = callbacks[0]
        target = getattr(callback, "__self__", None)
        if isinstance(target, Process):
            code = target._generator.gi_code
        else:
            function = getattr(callback, "__func__", callback)
            code = getattr(function, "__code__", None)
            if code is None:
                return ("other", "(opaque-callback)")
        cached = self._code_cache.get(code)
        if cached is None:
            cached = (layer_of_path(code.co_filename), _label_of(code))
            self._code_cache[code] = cached
        return cached

    # --- derived figures ------------------------------------------------
    def wall_seconds(self):
        """Wall clock spanned by the profiled event loop (first step
        start to last step end)."""
        if self._first_t0 is None:
            return 0.0
        return self._last_t1 - self._first_t0

    def sim_seconds(self):
        """Simulated seconds advanced while attached."""
        if self.sim is None:
            return 0.0
        return self.sim.now - self._sim_t0

    def real_time_factor(self):
        """Simulated seconds per wall second; > 1 means the simulator
        outruns the hardware it models."""
        wall = self.wall_seconds()
        return self.sim_seconds() / wall if wall > 0 else 0.0

    def events_per_sec(self):
        wall = self.wall_seconds()
        return self.steps / wall if wall > 0 else 0.0

    def pushes(self):
        return sum(self.push_count.values())

    def attributed_seconds(self):
        """Wall seconds charged to some layer (everything inside the
        profiled steps; the remainder is inter-step loop overhead)."""
        return sum(self.layer_wall.values())

    def coverage(self):
        """Attributed share of the measured wall time (the acceptance
        bar is >= 0.95)."""
        wall = self.wall_seconds()
        return self.attributed_seconds() / wall if wall > 0 else 0.0

    # --- reports --------------------------------------------------------
    def layer_table(self):
        """Layers sorted by wall time: name, wall_s, share, events."""
        wall = self.wall_seconds()
        rows = []
        for layer in sorted(self.layer_wall,
                            key=lambda name: -self.layer_wall[name]):
            seconds = self.layer_wall[layer]
            rows.append({"layer": layer, "wall_s": seconds,
                         "share": seconds / wall if wall > 0 else 0.0,
                         "events": self.layer_events.get(layer, 0)})
        return rows

    def hot_targets(self, top=15):
        """The ``top`` hottest callback targets across all layers."""
        wall = self.wall_seconds()
        ordered = sorted(self.target_wall.items(),
                         key=lambda item: (-item[1], item[0]))
        return [{"layer": layer, "target": label,
                 "wall_s": seconds,
                 "share": seconds / wall if wall > 0 else 0.0,
                 "events": self.target_events.get((layer, label), 0)}
                for (layer, label), seconds in ordered[:top]]

    def event_type_table(self):
        """Event classes sorted by wall time, with push/pop counts."""
        names = sorted(set(self.event_type_count) | set(self.push_count),
                       key=lambda name: -self.event_type_wall.get(name,
                                                                  0.0))
        return [{"type": name,
                 "wall_s": self.event_type_wall.get(name, 0.0),
                 "processed": self.event_type_count.get(name, 0),
                 "scheduled": self.push_count.get(name, 0)}
                for name in names]

    def collapsed_stacks(self):
        """The target attribution in collapsed-stack format (one
        ``frame;frame value`` line per target, value in microseconds) —
        feed it to ``flamegraph.pl`` or speedscope."""
        lines = []
        ordered = sorted(self.target_wall.items(),
                         key=lambda item: (-item[1], item[0]))
        for (layer, label), seconds in ordered:
            micros = int(round(seconds * 1e6))
            if micros <= 0:
                continue
            lines.append("repro;%s;%s %d"
                         % (layer, label.replace(";", ":"), micros))
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self):
        """The JSON-ready attribution summary for one simulator."""
        return {
            "steps": self.steps,
            "pushes": self.pushes(),
            "wall_seconds": self.wall_seconds(),
            "sim_seconds": self.sim_seconds(),
            "real_time_factor": self.real_time_factor(),
            "events_per_sec": self.events_per_sec(),
            "attributed_seconds": self.attributed_seconds(),
            "tick_wall_seconds": self.tick_wall,
            "gap_seconds": self.gap_wall,
            "coverage": self.coverage(),
            "layers": self.layer_table(),
            "event_types": self.event_type_table(),
        }


def aggregate(profilers):
    """Merge the summaries of several profiled worlds (a bench table's
    ``--profile`` run builds one world per cell) into one report of the
    same shape; rates are recomputed over the pooled totals."""
    layer_wall, layer_events = {}, {}
    target_wall, target_events = {}, {}
    type_wall, type_proc, type_sched = {}, {}, {}
    steps = pushes = 0
    wall = sim_s = attributed = tick = gap = 0.0
    for profiler in profilers:
        steps += profiler.steps
        pushes += profiler.pushes()
        wall += profiler.wall_seconds()
        sim_s += profiler.sim_seconds()
        attributed += profiler.attributed_seconds()
        tick += profiler.tick_wall
        gap += profiler.gap_wall
        for layer, seconds in profiler.layer_wall.items():
            layer_wall[layer] = layer_wall.get(layer, 0.0) + seconds
        for layer, count in profiler.layer_events.items():
            layer_events[layer] = layer_events.get(layer, 0) + count
        for key, seconds in profiler.target_wall.items():
            target_wall[key] = target_wall.get(key, 0.0) + seconds
        for key, count in profiler.target_events.items():
            target_events[key] = target_events.get(key, 0) + count
        for name, seconds in profiler.event_type_wall.items():
            type_wall[name] = type_wall.get(name, 0.0) + seconds
        for name, count in profiler.event_type_count.items():
            type_proc[name] = type_proc.get(name, 0) + count
        for name, count in profiler.push_count.items():
            type_sched[name] = type_sched.get(name, 0) + count
    layers = [{"layer": layer, "wall_s": layer_wall[layer],
               "share": layer_wall[layer] / wall if wall > 0 else 0.0,
               "events": layer_events.get(layer, 0)}
              for layer in sorted(layer_wall,
                                  key=lambda name: -layer_wall[name])]
    names = sorted(set(type_proc) | set(type_sched),
                   key=lambda name: -type_wall.get(name, 0.0))
    event_types = [{"type": name, "wall_s": type_wall.get(name, 0.0),
                    "processed": type_proc.get(name, 0),
                    "scheduled": type_sched.get(name, 0)}
                   for name in names]
    hot = [{"layer": layer, "target": label, "wall_s": seconds,
            "share": seconds / wall if wall > 0 else 0.0,
            "events": target_events.get((layer, label), 0)}
           for (layer, label), seconds
           in sorted(target_wall.items(),
                     key=lambda item: (-item[1], item[0]))[:15]]
    return {
        "worlds": len(profilers),
        "hot": hot,
        "steps": steps,
        "pushes": pushes,
        "wall_seconds": wall,
        "sim_seconds": sim_s,
        "real_time_factor": sim_s / wall if wall > 0 else 0.0,
        "events_per_sec": steps / wall if wall > 0 else 0.0,
        "attributed_seconds": attributed,
        "tick_wall_seconds": tick,
        "gap_seconds": gap,
        "coverage": attributed / wall if wall > 0 else 0.0,
        "layers": layers,
        "event_types": event_types,
    }


def _traced_kib(_filters=()):
    """Currently traced allocation KiB, 0 when tracemalloc is off."""
    if not tracemalloc.is_tracing():
        return 0.0
    return tracemalloc.get_traced_memory()[0] / 1024.0


def allocation_stats(before=None):
    """Group live allocations by repro layer.

    Call while :mod:`tracemalloc` is tracing.  With ``before`` (a
    snapshot taken earlier) the figures are the *delta* since that
    snapshot — the allocation cost of the code that ran in between.
    Returns ``{"layers": [...], "total_kib": ..., "peak_kib": ...}``.
    """
    if not tracemalloc.is_tracing():
        raise RuntimeError("tracemalloc is not tracing; call "
                           "tracemalloc.start() around the profiled run")
    snapshot = tracemalloc.take_snapshot()
    snapshot = snapshot.filter_traces([
        tracemalloc.Filter(False, tracemalloc.__file__),
    ])
    if before is not None:
        stats = snapshot.compare_to(before, "filename")
        sized = [(stat.traceback[0].filename, stat.size_diff,
                  stat.count_diff) for stat in stats]
    else:
        stats = snapshot.statistics("filename")
        sized = [(stat.traceback[0].filename, stat.size, stat.count)
                 for stat in stats]
    per_layer = {}
    for filename, size, count in sized:
        layer = layer_of_path(filename)
        entry = per_layer.setdefault(layer, [0, 0])
        entry[0] += size
        entry[1] += count
    layers = [{"layer": layer, "kib": size / 1024.0, "blocks": count}
              for layer, (size, count)
              in sorted(per_layer.items(), key=lambda item: -item[1][0])]
    total = sum(size for size, _count in per_layer.values())
    return {
        "layers": layers,
        "total_kib": total / 1024.0,
        "peak_kib": tracemalloc.get_traced_memory()[1] / 1024.0,
    }
