"""Measurement helpers: latency distributions and throughput meters.

The paper reports mean / P25 / P50 / P75 / P99 / max latencies per
operation type (Table 3) and throughput in IOPS, TPS, tpmC and OPS.
These classes collect exactly those summaries from simulation runs.
"""

from ..telemetry.histogram import nearest_rank


class LatencyRecorder:
    """Collects individual latency samples and summarises them.

    Percentiles use the nearest-rank method, which is what the LinkBench
    reporting script the paper relies on uses.
    """

    def __init__(self, name=""):
        self.name = name
        self._samples = []
        self._sorted = None  # cache, rebuilt lazily after new samples

    def record(self, latency):
        if latency < 0:
            raise ValueError("negative latency: %r" % latency)
        self._samples.append(latency)
        self._sorted = None

    def extend(self, latencies):
        for latency in latencies:
            self.record(latency)

    def sorted_samples(self):
        """All samples in ascending order (cached between records)."""
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def __len__(self):
        return len(self._samples)

    @property
    def count(self):
        return len(self._samples)

    @property
    def mean(self):
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def max(self):
        return max(self._samples) if self._samples else 0.0

    @property
    def min(self):
        return min(self._samples) if self._samples else 0.0

    def percentile(self, fraction):
        """Nearest-rank percentile; ``fraction`` in (0, 1]."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]: %r" % fraction)
        return nearest_rank(self.sorted_samples(), fraction)

    def summary(self):
        """Dict with the paper's Table 3 columns (seconds)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p25": self.percentile(0.25),
            "p50": self.percentile(0.50),
            "p75": self.percentile(0.75),
            "p99": self.percentile(0.99),
            "max": self.max,
        }

    def merged_with(self, other):
        merged = LatencyRecorder(self.name)
        merged._samples = self._samples + other._samples
        return merged


class ThroughputMeter:
    """Counts completed operations over a simulated-time window."""

    def __init__(self, name=""):
        self.name = name
        self.completed = 0
        self._window_start = None
        self._window_end = None

    def start_window(self, now):
        """Begin measuring (call after warm-up)."""
        self._window_start = now
        self.completed = 0

    def record(self, now, amount=1):
        if self._window_start is None:
            return
        self.completed += amount
        self._window_end = now

    @property
    def elapsed(self):
        if self._window_start is None or self._window_end is None:
            return 0.0
        return self._window_end - self._window_start

    def per_second(self):
        """Operations per simulated second over the measured window."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed / self.elapsed

    def per_minute(self):
        return self.per_second() * 60.0


class CounterSet:
    """A bag of named integer counters (cache hits, GC runs, bytes...)."""

    def __init__(self):
        self._counts = {}

    def add(self, name, amount=1):
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name):
        return self._counts.get(name, 0)

    def as_dict(self):
        return dict(self._counts)

    def ratio(self, numerator, denominator):
        """``numerator / denominator`` counters, 0.0 when undefined."""
        bottom = self.get(denominator)
        if not bottom:
            return 0.0
        return self.get(numerator) / bottom
