"""A small discrete-event simulation kernel.

The kernel follows the familiar generator-coroutine style: a *process*
is a Python generator that ``yield``s :class:`Event` objects and is
resumed when they fire.  It is deliberately minimal — just enough to
model an I/O stack — and fully deterministic: events scheduled for the
same instant fire in schedule order.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> p1 = sim.process(worker(sim, 'a', 2.0))
>>> p2 = sim.process(worker(sim, 'b', 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

import heapq
from itertools import count

from ..telemetry.hub import Telemetry


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Simulator.run` immediately.

    The power-failure injector uses this to freeze the simulated world at
    the instant the power is cut.
    """


_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* (with a value or an exception) exactly once;
    at its scheduled instant it becomes *processed* and its callbacks run.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = _PENDING

    @property
    def triggered(self):
        return self._state >= _TRIGGERED

    @property
    def processed(self):
        return self._state == _PROCESSED

    @property
    def ok(self):
        """True when the event carries a value rather than an exception."""
        return self._ok

    @property
    def value(self):
        """The value (or exception) the event was triggered with."""
        return self._value

    def succeed(self, value=None, delay=0.0):
        """Trigger the event successfully, firing after ``delay``."""
        if self._state != _PENDING:
            raise SimulationError("event has already been triggered")
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self.sim._push(self, delay)
        return self

    def fail(self, exception, delay=0.0):
        """Trigger the event with an exception to be thrown into waiters."""
        if self._state != _PENDING:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self._state = _TRIGGERED
        self.sim._push(self, delay)
        return self

    def _process(self):
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimulationError("negative timeout: %r" % delay)
        super().__init__(sim)
        self._value = value
        self._state = _TRIGGERED
        sim._push(self, delay)


class Interrupted(Exception):
    """Thrown into a process that was interrupted.

    ``cause`` carries whatever the interrupter supplied (for example the
    power-failure record).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Runs a generator, resuming it whenever the yielded event fires.

    The process itself is an event: it triggers with the generator's
    return value, or fails with its uncaught exception, so processes can
    wait on each other.
    """

    __slots__ = ("_generator", "_waiting_on", "span")

    def __init__(self, sim, generator):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("process requires a generator, got %r" % (generator,))
        self._generator = generator
        self._waiting_on = None
        # Telemetry span context: a spawned process inherits the span of
        # whoever spawned it, so causality follows process fan-out.
        creator = sim._active_process
        self.span = creator.span if creator is not None \
            else sim.telemetry._ambient
        # Kick off at the current instant (deterministically ordered).
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self):
        return self._state == _PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupted` into the process at the current instant."""
        if not self.is_alive:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        poke = Event(self.sim)
        poke.callbacks.append(lambda event: self._throw(Interrupted(cause)))
        poke.succeed()

    def _throw(self, exception):
        if not self.is_alive:
            return
        sim = self.sim
        previous = sim._active_process
        sim._active_process = self
        try:
            try:
                result = self._generator.throw(exception)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate into waiters
                self._terminate(exc)
                return
        finally:
            sim._active_process = previous
        self._wait_on(result)

    def _resume(self, event):
        self._waiting_on = None
        sim = self.sim
        previous = sim._active_process
        sim._active_process = self
        try:
            try:
                if event._ok:
                    result = self._generator.send(event._value)
                else:
                    result = self._generator.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate into waiters
                self._terminate(exc)
                return
        finally:
            sim._active_process = previous
        self._wait_on(result)

    def _wait_on(self, result):
        if not isinstance(result, Event):
            self._throw(SimulationError("process yielded a non-event: %r" % (result,)))
            return
        if result.processed:
            # Already fired: resume on a fresh zero-delay event carrying
            # the same outcome so ordering stays deterministic.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if result._ok:
                relay.succeed(result._value)
            else:
                relay.fail(result._value)
            self._waiting_on = relay
        else:
            result.callbacks.append(self._resume)
            self._waiting_on = result

    def _terminate(self, exc):
        if self.callbacks or isinstance(exc, StopSimulation):
            self.fail(exc)
        else:
            # Nobody is waiting on this process; surfacing the error at
            # the simulator level beats swallowing it.
            raise exc


class AllOf(Event):
    """Fires once every child event has fired; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim, events):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = 0
        for event in self._children:
            if not isinstance(event, Event):
                raise SimulationError("AllOf requires events, got %r" % (event,))
        pending = [event for event in self._children if not event.processed]
        self._remaining = len(pending)
        if not self._remaining:
            self._finish()
        else:
            for event in pending:
                event.callbacks.append(self._child_done)

    def _child_done(self, event):
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if not self._remaining:
            self._finish()

    def _finish(self):
        for event in self._children:
            if not event._ok:
                self.fail(event._value)
                return
        self.succeed([event._value for event in self._children])


class AnyOf(Event):
    """Fires with (index, value) of the first child event to fire."""

    __slots__ = ("_children",)

    def __init__(self, sim, events):
        super().__init__(sim)
        self._children = list(events)
        done = [e for e in self._children if e.processed]
        if done:
            first = done[0]
            index = self._children.index(first)
            if first._ok:
                self.succeed((index, first._value))
            else:
                self.fail(first._value)
            return
        for event in self._children:
            event.callbacks.append(self._child_done)

    def _child_done(self, event):
        if self.triggered:
            return
        index = self._children.index(event)
        if event._ok:
            self.succeed((index, event._value))
        else:
            self.fail(event._value)


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events.

    ``telemetry`` is the observability hub every layer reports into
    (:mod:`repro.telemetry`); when omitted a disabled hub is installed,
    whose calls all short-circuit — the simulation behaves identically
    with telemetry absent, disabled or enabled.
    """

    def __init__(self, telemetry=None):
        self.now = 0.0
        self._heap = []
        self._sequence = count()
        self._stopped = False
        self._active_process = None
        # Determinism fingerprint: two runs of the same seeded world must
        # process the same number of events in the same order.  Replay
        # harnesses compare this cheap counter to detect divergence.
        self.processed_events = 0
        # Probe-sampling hook: armed only when an enabled hub has probes
        # registered, so the common path pays one None check per step.
        self._tick = None
        # Self-profiler seam: a SimProfiler attaches by *replacing*
        # step/_push with instance-level overrides, so an unprofiled
        # simulator runs the untouched class methods — zero overhead.
        self._profiler = None
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry(enabled=False)
        self.telemetry._bind(self)
        if self.telemetry.profiler is not None:
            self.telemetry.profiler.attach(self)
        if self.telemetry.probes:
            self._arm_telemetry_tick()

    @property
    def active_process(self):
        """The process whose generator is currently executing, if any."""
        return self._active_process

    def _arm_telemetry_tick(self):
        self._tick = self.telemetry._on_clock_advance

    # --- scheduling -----------------------------------------------------
    def _push(self, event, delay):
        heapq.heappush(self._heap, (self.now + delay, next(self._sequence), event))

    def schedule(self, delay, callback):
        """Run ``callback(sim)`` after ``delay``; returns the underlying event."""
        event = Event(self)
        event.callbacks.append(lambda _event: callback(self))
        event.succeed(delay=delay)
        return event

    # --- factories ------------------------------------------------------
    def event(self):
        return Event(self)

    def timeout(self, delay, value=None):
        return Timeout(self, delay, value)

    def process(self, generator):
        return Process(self, generator)

    def all_of(self, events):
        return AllOf(self, events)

    def any_of(self, events):
        return AnyOf(self, events)

    # --- execution ------------------------------------------------------
    def peek(self):
        """Time of the next event, or None when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self):
        """Process exactly one event."""
        when, _seq, event = heapq.heappop(self._heap)
        if self._tick is not None and when > self.now:
            # Sample telemetry probes at every grid instant the clock is
            # about to jump over.  State is constant between events, so
            # this observes without adding events or perturbing anything.
            self._tick(when)
        self.now = when
        self.processed_events += 1
        event._process()

    def run(self, until=None):
        """Run until the queue drains or the clock passes ``until``.

        A callback raising :class:`StopSimulation` halts the run at the
        current instant (used by the power-failure injector); the
        exception is absorbed and :meth:`run` returns normally.
        """
        self._stopped = False
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    if self._tick is not None and until > self.now:
                        self._tick(until)
                    self.now = until
                    return
                self.step()
        except StopSimulation:
            self._stopped = True
        if until is not None and self.now < until and not self._stopped:
            if self._tick is not None:
                self._tick(until)
            self.now = until

    def run_until(self, event):
        """Run until ``event`` is processed (for worlds with perpetual
        background processes that would keep :meth:`run` spinning).

        Raises if the queue drains first, or re-raises the event's
        exception when it failed.
        """
        self._stopped = False
        try:
            while not event.processed:
                if not self._heap:
                    raise SimulationError("queue drained before the event fired")
                self.step()
        except StopSimulation:
            self._stopped = True
            return
        if not event._ok:
            raise event._value

    @property
    def stopped(self):
        """True when the last run() was halted by StopSimulation."""
        return self._stopped
