"""Seeded random-number helpers shared by workloads and devices.

Every stochastic component takes an explicit ``random.Random`` so whole
experiments are reproducible from a single seed.  The Zipf sampler here
is the standard rejection-inversion-free approximation used by YCSB's
``ZipfianGenerator`` (Gray et al.), which LinkBench and YCSB both build
their skewed key distributions on.
"""

import random


def make_rng(seed):
    """A fresh deterministic generator for any hashable seed.

    Composite seeds (tuples of primitives) are keyed by their ``repr``,
    not ``hash()``: string hashing is randomized per process
    (PYTHONHASHSEED), and replayable failure artifacts require the same
    seed to produce the same stream in *every* process.
    """
    if isinstance(seed, (int, float, str, bytes, bytearray)) or seed is None:
        return random.Random(seed)
    return random.Random(repr(seed))


def derive(rng):
    """A child generator whose stream is independent of its siblings.

    Deterministic: drawing children in a fixed order from a seeded parent
    yields the same family every run.
    """
    return random.Random(rng.getrandbits(64))


class ZipfGenerator:
    """Zipf-distributed integers in [0, n) with exponent ``theta``.

    Uses the closed-form inverse-CDF approximation from Gray et al.,
    "Quickly Generating Billion-Record Synthetic Databases" (SIGMOD'94),
    the same algorithm YCSB ships.  theta=0.99 is YCSB's default; the
    LinkBench access skew is in the same regime.
    """

    def __init__(self, n, theta=0.99, rng=None):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1): %r" % theta)
        self.n = n
        self.theta = theta
        self._rng = rng or random.Random(0)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n, theta):
        # Exact up to a cutoff, then the integral approximation; keeps
        # construction O(1)-ish for the multi-million-key spaces we use.
        cutoff = min(n, 10000)
        total = sum(1.0 / (i ** theta) for i in range(1, cutoff + 1))
        if n > cutoff:
            # integral of x^-theta from cutoff to n
            total += ((n ** (1 - theta)) - (cutoff ** (1 - theta))) / (1 - theta)
        return total

    def next(self):
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1) ** self._alpha))

    def __iter__(self):
        while True:
            yield self.next()


class UniformGenerator:
    """Uniform integers in [0, n), same interface as ZipfGenerator."""

    def __init__(self, n, rng=None):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self._rng = rng or random.Random(0)

    def next(self):
        return self._rng.randrange(self.n)


class ScrambledZipfGenerator:
    """Zipf popularity spread across the key space by hashing.

    YCSB's ``ScrambledZipfianGenerator``: hot keys are not clustered at
    the low end of the space, which matters for page-locality modelling.
    """

    _GOLDEN = 0x9E3779B97F4A7C15

    def __init__(self, n, theta=0.99, rng=None):
        self.n = n
        self._zipf = ZipfGenerator(n, theta, rng)

    def next(self):
        rank = self._zipf.next()
        return ((rank * self._GOLDEN) & 0xFFFFFFFFFFFFFFFF) % self.n
