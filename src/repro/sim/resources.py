"""Synchronisation primitives for simulation processes.

These mirror the usual concurrency toolbox: a counted :class:`Resource`
(semaphore with FIFO fairness), a :class:`Store` (unbounded FIFO queue of
items), and a :class:`Mutex` convenience wrapper.
"""

from collections import deque

from .engine import Event, SimulationError


class Resource:
    """A capacity-limited resource acquired and released by processes.

    Usage inside a process::

        grant = yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim, capacity=1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()

    @property
    def in_use(self):
        return self._in_use

    @property
    def queue_length(self):
        return len(self._waiters)

    def acquire(self):
        """Return an event that fires when a unit is granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Return one unit; hands it to the longest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1

    def cancel(self, event):
        """Withdraw an acquire request, or release it if already granted.

        A process interrupted while waiting on :meth:`acquire` leaves its
        event queued; a later :meth:`release` would hand the unit to that
        dead waiter and leak it forever.  ``cancel`` makes an abandoned
        acquire safe either way: a still-queued request is simply removed,
        a granted one is released back.
        """
        if event.triggered:
            self.release()
        else:
            try:
                self._waiters.remove(event)
            except ValueError:
                pass

    def acquire_guarded(self):
        """Generator: acquire a unit, withdrawing the request on interrupt.

        Use with ``yield from`` inside a process that may be interrupted
        (aborted commands, device resets) while queued for the resource::

            yield from resource.acquire_guarded()
            try:
                ...
            finally:
                resource.release()
        """
        grant = self.acquire()
        try:
            yield grant
        except BaseException:
            self.cancel(grant)
            raise


class Mutex(Resource):
    """A Resource of capacity one."""

    def __init__(self, sim):
        super().__init__(sim, capacity=1)


class Store:
    """An unbounded FIFO channel between producer and consumer processes."""

    def __init__(self, sim):
        self.sim = sim
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Deposit an item; wakes the longest-waiting getter immediately."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self):
        """Return an event that fires with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self):
        """A snapshot list of queued items (for introspection in tests)."""
        return list(self._items)
