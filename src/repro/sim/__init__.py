"""Discrete-event simulation kernel used by every layer of the stack."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .profiler import SimProfiler
from .resources import Mutex, Resource, Store
from .rng import ScrambledZipfGenerator, UniformGenerator, ZipfGenerator, make_rng
from .stats import CounterSet, LatencyRecorder, ThroughputMeter
from . import units

__all__ = [
    "AllOf",
    "AnyOf",
    "CounterSet",
    "Event",
    "Interrupted",
    "LatencyRecorder",
    "Mutex",
    "Process",
    "Resource",
    "ScrambledZipfGenerator",
    "SimProfiler",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "UniformGenerator",
    "ZipfGenerator",
    "make_rng",
    "units",
]
